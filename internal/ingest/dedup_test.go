package ingest

// Tests for the exactly-once half of the listener: the v2 session
// handshake, the per-session dedup window, replay re-acks, eviction,
// and v1 coexistence. These drive raw wire connections so the replay
// choreography (send the same batch sequence twice, across connections,
// across server restarts) is exact; the client-side view lives in
// internal/provclient and the full e2e in internal/provd.

import (
	"strings"
	"testing"

	"repro/internal/logs"
	"repro/internal/store"
	"repro/internal/wire"
)

func (rc *rawConn) sendHello(version uint64, session string) {
	rc.t.Helper()
	e := wire.NewEncoder()
	e.IngestHello(version, session)
	if err := rc.enc.Envelope(e.Bytes()); err != nil {
		rc.t.Fatal(err)
	}
}

func (rc *rawConn) sendBatch2(id, batchSeq uint64, acts []logs.Action) {
	rc.t.Helper()
	e := wire.NewEncoder()
	e.IngestBatch2(id, batchSeq, acts)
	if err := rc.enc.Envelope(e.Bytes()); err != nil {
		rc.t.Fatal(err)
	}
}

// handshake sends a hello and consumes the helloack, returning the
// server's highest committed batch sequence for the session.
func (rc *rawConn) handshake(session string) uint64 {
	rc.t.Helper()
	rc.sendHello(wire.IngestV2, session)
	rc.flush()
	m, err := rc.readMsg()
	if err != nil {
		rc.t.Fatal(err)
	}
	if m.Op != wire.OpIngestHelloAck || m.Version != wire.IngestV2 {
		rc.t.Fatalf("handshake reply: %+v", m)
	}
	return m.BatchSeq
}

// TestSessionReplayReAck: the same batch sequence sent twice on one
// connection is appended once; the replay's ack carries the original
// sequence block.
func TestSessionReplayReAck(t *testing.T) {
	srv, st, addr := newTestServer(t, Options{})
	rc := dialRaw(t, addr)
	if max := rc.handshake("sess-a"); max != 0 {
		t.Fatalf("fresh session reports max %d", max)
	}

	batch := acts("p", 0, 4)
	rc.sendBatch2(1, 1, batch)
	rc.flush()
	first, err := rc.readMsg()
	if err != nil {
		t.Fatal(err)
	}
	if first.Op != wire.OpIngestAck || first.ID != 1 || first.Count != 4 {
		t.Fatalf("first ack: %+v", first)
	}

	rc.sendBatch2(2, 1, batch) // the replay: same batch seq, fresh request id
	rc.flush()
	second, err := rc.readMsg()
	if err != nil {
		t.Fatal(err)
	}
	if second.Op != wire.OpIngestAck || second.ID != 2 {
		t.Fatalf("replay ack: %+v", second)
	}
	if second.Base != first.Base || second.Count != first.Count {
		t.Fatalf("replay re-acked %d+%d, want the original %d+%d", second.Base, second.Count, first.Base, first.Count)
	}
	if n := st.Len(); n != 4 {
		t.Fatalf("store has %d records, want 4 (no duplicate append)", n)
	}
	stats := srv.Stats()
	if stats.DedupReplays != 1 || stats.DedupRecords != 4 {
		t.Fatalf("dedup stats: %+v", stats)
	}
}

// TestSessionReplayAcrossConnections: a replay arriving on a fresh
// connection — the client reconnected after losing the ack — finds the
// committed entry, and the handshake reports the session's floor.
func TestSessionReplayAcrossConnections(t *testing.T) {
	_, st, addr := newTestServer(t, Options{})

	rc1 := dialRaw(t, addr)
	rc1.handshake("sess-b")
	rc1.sendBatch2(1, 1, acts("p", 0, 3))
	rc1.flush()
	first, err := rc1.readMsg()
	if err != nil {
		t.Fatal(err)
	}
	rc1.c.Close() // the ack was "lost": the client dies before processing it

	rc2 := dialRaw(t, addr)
	if max := rc2.handshake("sess-b"); max != 1 {
		t.Fatalf("resumed session reports max %d, want 1", max)
	}
	rc2.sendBatch2(1, 1, acts("p", 0, 3))
	rc2.flush()
	replay, err := rc2.readMsg()
	if err != nil {
		t.Fatal(err)
	}
	if replay.Op != wire.OpIngestAck || replay.Base != first.Base || replay.Count != first.Count {
		t.Fatalf("cross-connection replay: %+v, want block %d+%d", replay, first.Base, first.Count)
	}
	if n := st.Len(); n != 3 {
		t.Fatalf("store has %d records, want 3", n)
	}
}

// TestSessionDedupSurvivesRestart: the session table is durable — a
// replay against a server recovered from the same store directory is
// still re-acked with the original block, not appended again.
func TestSessionDedupSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rc := dialRaw(t, addr)
	rc.handshake("sess-c")
	rc.sendBatch2(1, 1, acts("p", 0, 5))
	rc.flush()
	first, err := rc.readMsg()
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2 := NewServer(st2, Options{})
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	rc2 := dialRaw(t, addr2)
	if max := rc2.handshake("sess-c"); max != 1 {
		t.Fatalf("recovered session reports max %d, want 1", max)
	}
	rc2.sendBatch2(1, 1, acts("p", 0, 5))
	rc2.flush()
	replay, err := rc2.readMsg()
	if err != nil {
		t.Fatal(err)
	}
	if replay.Op != wire.OpIngestAck || replay.Base != first.Base || replay.Count != first.Count {
		t.Fatalf("post-restart replay: %+v, want block %d+%d", replay, first.Base, first.Count)
	}
	if n := st2.Len(); n != 5 {
		t.Fatalf("recovered store has %d records, want 5", n)
	}
	if got := srv2.Stats().DedupReplays; got != 1 {
		t.Fatalf("DedupReplays = %d, want 1", got)
	}
}

// TestSessionEvictionRejected: a batch sequence that has fallen out of
// the dedup window is refused with a request-scoped error — committing
// it blind could duplicate records — and the connection stays usable.
func TestSessionEvictionRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SessionWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := NewServer(st, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	rc := dialRaw(t, addr)
	rc.handshake("sess-d")
	for seq := uint64(1); seq <= 5; seq++ {
		rc.sendBatch2(seq, seq, acts("p", int(seq), 1))
		rc.flush()
		if m, err := rc.readMsg(); err != nil || m.Op != wire.OpIngestAck {
			t.Fatalf("seq %d: %+v %v", seq, m, err)
		}
	}
	rc.sendBatch2(9, 1, acts("p", 1, 1)) // ancient replay: outside the window of 2
	rc.flush()
	m, err := rc.readMsg()
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != wire.OpIngestError || m.ID != 9 || !strings.Contains(m.Msg, "evicted") {
		t.Fatalf("evicted replay: %+v", m)
	}
	if got := srv.Stats().DedupEvicted; got != 1 {
		t.Fatalf("DedupEvicted = %d, want 1", got)
	}
	// The connection survives a per-request rejection.
	rc.sendBatch2(10, 6, acts("p", 6, 1))
	rc.flush()
	if m, err := rc.readMsg(); err != nil || m.Op != wire.OpIngestAck {
		t.Fatalf("post-eviction batch: %+v %v", m, err)
	}
	if n := st.Len(); n != 6 {
		t.Fatalf("store has %d records, want 6", n)
	}
}

// TestHandshakeProtocolErrors: sessioned batches before a hello, bad
// hello versions, empty sessions and duplicate hellos are all
// connection-scoped failures.
func TestHandshakeProtocolErrors(t *testing.T) {
	_, _, addr := newTestServer(t, Options{})

	expectClose := func(name string, drive func(rc *rawConn)) {
		t.Helper()
		rc := dialRaw(t, addr)
		drive(rc)
		rc.flush()
		for {
			m, err := rc.readMsg()
			if err != nil {
				t.Fatalf("%s: connection died without an id-0 error: %v", name, err)
			}
			if m.Op == wire.OpIngestHelloAck {
				continue // the leg that sends a valid hello first
			}
			if m.Op != wire.OpIngestError || m.ID != 0 {
				t.Fatalf("%s: got %+v, want id-0 error", name, m)
			}
			return
		}
	}
	expectClose("batch2 before hello", func(rc *rawConn) {
		rc.sendBatch2(1, 1, acts("p", 0, 1))
	})
	expectClose("bad version", func(rc *rawConn) {
		rc.sendHello(99, "sess-x")
	})
	expectClose("empty session", func(rc *rawConn) {
		rc.sendHello(wire.IngestV2, "")
	})
	expectClose("duplicate hello", func(rc *rawConn) {
		rc.sendHello(wire.IngestV2, "sess-y")
		rc.sendHello(wire.IngestV2, "sess-y")
	})
}

// TestV1AndV2Coexist: a sessionless v1 connection and a sessioned v2
// connection interleave against one server; the v1 side gets no dedup
// (a resend appends again, at-least-once as documented), the v2 side
// does.
func TestV1AndV2Coexist(t *testing.T) {
	_, st, addr := newTestServer(t, Options{})

	v1 := dialRaw(t, addr)
	v2 := dialRaw(t, addr)
	v2.handshake("sess-e")

	batch := acts("p", 0, 2)
	v1.sendBatch(1, batch)
	v1.flush()
	if m, err := v1.readMsg(); err != nil || m.Op != wire.OpIngestAck {
		t.Fatalf("v1 ack: %+v %v", m, err)
	}
	v1.sendBatch(2, batch) // v1 "replay": no session, appends again
	v1.flush()
	if m, err := v1.readMsg(); err != nil || m.Op != wire.OpIngestAck {
		t.Fatalf("v1 resend ack: %+v %v", m, err)
	}

	v2.sendBatch2(1, 1, batch)
	v2.flush()
	if m, err := v2.readMsg(); err != nil || m.Op != wire.OpIngestAck {
		t.Fatalf("v2 ack: %+v %v", m, err)
	}
	v2.sendBatch2(2, 1, batch) // v2 replay: dedup'd
	v2.flush()
	if m, err := v2.readMsg(); err != nil || m.Op != wire.OpIngestAck {
		t.Fatalf("v2 replay ack: %+v %v", m, err)
	}

	if n := st.Len(); n != 3*len(batch) {
		t.Fatalf("store has %d records, want %d (two v1 copies + one v2)", n, 3*len(batch))
	}
}
