// Package ingest is the binary pipelined append path into a provenance
// store: a TCP listener speaking checksummed wire frames (internal/wire
// stream + ingest codecs; spec in docs/protocol.md), built so a fleet
// of monitored principals can feed one global log as fast as the store
// can commit.
//
// Pipelining. A connection carries many requests in flight: the client
// does not wait for an ack before sending the next batch. Each request
// carries a client-chosen id, echoed in its reply, so replies match
// requests without ordering assumptions (the server does reply in
// request order, but clients need not rely on it).
//
// Adaptive batching. Each connection splits into a reader and a
// committer. The reader decodes request frames into a bounded queue;
// the committer drains whatever has accumulated — across requests —
// into one store.AppendBatch call, then acks every request in the round
// with its slice of the assigned contiguous sequence block. While a
// commit (and its fsync) runs, the queue refills, so batch size adapts
// to commit latency: the classic group-commit shape, the same one the
// runtime's sink pipeline uses in process.
//
// Exactly-once. A connection that opens with the v2 session handshake
// (wire.OpIngestHello) gets replay protection: every sessioned batch
// carries the session's monotonic batch sequence, and a sequence the
// store's session table already holds is *re-acked* with its original
// global sequence block instead of being appended again. The table is
// checkpointed through the store (one sessions.log entry per committed
// batch, written before the ack) and recovered on open, so dedup
// survives a provd restart. The lookup → append → checkpoint round runs
// under the table lock, so a replay racing its original commit on
// another connection serialises behind it. Sessionless (v1) batches are
// accepted unchanged and get no replay protection.
//
// Failure. A request the store rejects up front (validation) is
// answered with an error reply and costs nothing else: the connection
// and the other requests in its round proceed. A sessioned batch whose
// sequence has fallen out of the dedup window is likewise rejected per
// request (committing it blind could duplicate records). Frame-level
// corruption (bad checksum, truncation, an unparseable envelope) closes
// the connection after an error reply with id 0 — request boundaries
// can no longer be trusted. Acks are sent only after the store call
// returns, so an acked batch is as durable as the store's Options.Fsync
// promises.
//
// Reads. The same listener serves the binary read path (query.go in
// this package): OpQuery runs a typed query (internal/query) and
// streams its results back as chunk frames, with cursor pagination and
// an optional Follow mode that tails the live log — the remote
// replication and off-box audit primitive. Queries pipeline and
// interleave freely with ingest traffic on a connection.
//
// Drain. Close stops the accept loop, then drains every connection:
// requests already read are committed and acked, running queries end
// with a resume cursor, the encoder is flushed, and only then are
// connections closed. Requests a client wrote but the server had not
// read are dropped unacked — the client's retry discipline
// (internal/provclient) covers them.
package ingest

import (
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/logs"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/trust"
	"repro/internal/wire"
)

// Options tunes the listener.
type Options struct {
	// Queue is the per-connection pending-request bound (default 256).
	// A full queue blocks that connection's reader — per-connection
	// backpressure, not global.
	Queue int
	// MaxRoundActions caps how many actions one commit round hands to
	// store.AppendBatch (default 1<<15), bounding the store lock hold
	// of a single round under a firehose of pipelined requests.
	MaxRoundActions int
	// Policy is the disclosure policy queries are redacted under (nil =
	// full disclosure) — the same policy provd's HTTP surface applies,
	// so the binary read path discloses exactly what HTTP would.
	Policy *trust.DisclosurePolicy
	// Engine, when set, serves queries instead of an engine built from
	// Policy. Pass provd's engine (provd.Server.Engine) so both read
	// surfaces share one set of redaction/denial counters — or a
	// cluster coordinator's scatter-gather runner, which is how one
	// binary read protocol serves both a single node and a partitioned
	// fleet. Required when the store is nil (coordinator mode).
	Engine query.Runner
	// MaxQueriesPerConn caps concurrently running queries (including
	// follows) per connection (default 8); one past the cap is rejected
	// with a query-end error, the connection survives.
	MaxQueriesPerConn int
	// DrainWriteTimeout bounds reply writes once Close begins (default
	// 5s). Healthy clients drain their acks and query ends well inside
	// it; a stalled reader (full TCP buffer under a live follow) has
	// its blocked writes failed after the timeout instead of wedging
	// Close forever.
	DrainWriteTimeout time.Duration
	// ReadOnly refuses all append traffic (hello, batches) with an
	// error naming LeaderAddr, while queries, follows and snapshots are
	// served unchanged. This is the listener a replica-mode provd runs:
	// the replica's store has exactly one writer (its Replicator), and
	// a client that dials the wrong node learns where the leader is.
	ReadOnly bool
	// LeaderAddr is the leader's ingest address named in ReadOnly
	// rejections (may be empty).
	LeaderAddr string
	// TLS, when set, wraps the listener: every connection must complete
	// a TLS handshake before its first frame. With
	// tls.RequireAndVerifyClientCert and a ClientCAs pool this is the
	// mutual-TLS deployment shape (docs/security.md); the verified
	// client certificate is what Auth resolves identities from.
	TLS *tls.Config
	// IdlePark is how long a connection must be quiet — nothing
	// buffered, no queued requests, no running queries or follows —
	// before its reader/committer goroutines are torn down and the
	// socket is parked on a shared readiness poller (default 2s;
	// negative disables parking). A parked connection costs its file
	// descriptor and a small state record: its stream buffers go back
	// to the wire pools and, on Linux, no goroutine watches it at all
	// (one epoll instance watches every parked socket). The first byte
	// from the peer wakes it; the wire protocol is untouched — parking
	// happens only at a frame boundary, so neither side can observe it
	// except as scheduling latency on the first frame after an idle
	// gap. This is what lets one listener hold 10k mostly-idle
	// monitored middlewares at approximately zero heap and goroutine
	// cost.
	IdlePark time.Duration
	// Cluster, when set, is this node's view of the partition map
	// (internal/cluster.Node). Two effects: the listener answers
	// wire.OpClusterMapReq with the map, and — on a leader, where Owns
	// can be true — every batch is ownership-checked, with batches
	// naming a principal this node does not own refused per request by
	// an error starting "cluster:" that names the node's epoch. A
	// routing client that sees one refetches the map and re-routes;
	// nothing from the refused batch was appended, so re-sending it to
	// the new owner under a fresh sequence is exactly-once safe.
	Cluster ClusterView
	// Auth, when set, turns on identity enforcement: a connection must
	// authenticate (client certificate on TLS, a wire.OpIngestAuth
	// token frame on cleartext) as an identity the guard's map knows,
	// and every operation is checked against that identity's grant —
	// appends against its principal set and append role, queries and
	// follows against its read role with the observer coerced to its
	// grant, snapshots against its replica role. Nil disables
	// enforcement (every caller may do anything), the pre-auth
	// behaviour the harness's -insecure shape keeps.
	Auth *auth.Guard
}

// ClusterView is what the listener needs from a partition map: whether
// this node owns a principal, which epoch the node's map carries, and
// the wire form of the map for serving to clients. internal/cluster's
// Node satisfies it; the interface keeps this package free of a
// dependency on the cluster layer.
type ClusterView interface {
	Owns(principal string) bool
	Epoch() uint64
	WireMap() wire.ClusterMap
}

func (o Options) withDefaults() Options {
	if o.Queue <= 0 {
		o.Queue = 256
	}
	if o.MaxRoundActions <= 0 {
		o.MaxRoundActions = 1 << 15
	}
	if o.MaxQueriesPerConn <= 0 {
		o.MaxQueriesPerConn = 8
	}
	if o.DrainWriteTimeout <= 0 {
		o.DrainWriteTimeout = 5 * time.Second
	}
	if o.IdlePark == 0 {
		o.IdlePark = 2 * time.Second
	}
	return o
}

// Stats is a snapshot of the listener's counters.
type Stats struct {
	Accepted        uint64 // connections accepted
	Active          uint64 // connections currently open
	Requests        uint64 // batch requests read
	Records         uint64 // actions acked durable
	Commits         uint64 // store.AppendBatch rounds
	Rejects         uint64 // error replies sent
	ConnFails       uint64 // connections dropped on protocol/write errors
	Sessions        uint64 // v2 session handshakes accepted
	DedupReplays    uint64 // replayed batches re-acked without appending
	DedupRecords    uint64 // actions the dedup window kept out of the log
	DedupEvicted    uint64 // sessioned batches refused as outside the dedup window
	CheckpointFails uint64 // session-table checkpoint writes that failed (acks still truthful; replay protection for those batches lost)
	Queries         uint64 // query requests started (including follows)
	QueryRecords    uint64 // records served over the query ops
	Follows         uint64 // queries opened in follow mode
	QueryRejects    uint64 // queries answered with a query-end error
	Snapshots       uint64 // snapshot transfers started
	SnapshotRecords uint64 // records served over snapshot chunks
	Parked          uint64 // connections currently idle-parked (no reader/committer goroutines)
	Parks           uint64 // park transitions since start
	Wakes           uint64 // parked connections woken by traffic (or drain)
}

// Server is the binary ingest listener over a store. With a nil store
// (coordinator mode) it serves only the read plane: queries and
// follows run against Options.Engine, hellos are answered with a zero
// floor so ordinary clients can dial it, and batches and snapshots are
// refused per the same per-op shape as ReadOnly.
type Server struct {
	store  *store.Store
	opts   Options
	engine query.Runner

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	done     chan struct{}
	wg       sync.WaitGroup

	accepted        atomic.Uint64
	active          atomic.Int64
	requests        atomic.Uint64
	records         atomic.Uint64
	commits         atomic.Uint64
	rejects         atomic.Uint64
	connFails       atomic.Uint64
	sessions        atomic.Uint64
	dedupReplays    atomic.Uint64
	dedupRecords    atomic.Uint64
	dedupEvicted    atomic.Uint64
	checkpointFails atomic.Uint64
	queries         atomic.Uint64
	queryRecords    atomic.Uint64
	follows         atomic.Uint64
	queryRejects    atomic.Uint64
	snapshots       atomic.Uint64
	snapshotRecords atomic.Uint64
	parked          atomic.Int64
	parks           atomic.Uint64
	wakes           atomic.Uint64

	pollOnce sync.Once
	poll     *netPoller // nil until a connection first parks, or unsupported
}

// NewServer wraps a store in an ingest listener.
func NewServer(st *store.Store, opts Options) *Server {
	opts = opts.withDefaults()
	engine := opts.Engine
	if engine == nil {
		if st == nil {
			panic("ingest: NewServer with a nil store requires Options.Engine")
		}
		engine = query.NewEngine(st, opts.Policy)
	}
	return &Server{
		store:  st,
		opts:   opts,
		engine: engine,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. With Options.TLS set the listener only
// speaks TLS; the handshake itself runs in each connection's handler.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if s.opts.TLS != nil {
		l = tls.NewListener(l, s.opts.TLS)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Stats snapshots the listener's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:        s.accepted.Load(),
		Active:          uint64(max(s.active.Load(), 0)),
		Requests:        s.requests.Load(),
		Records:         s.records.Load(),
		Commits:         s.commits.Load(),
		Rejects:         s.rejects.Load(),
		ConnFails:       s.connFails.Load(),
		Sessions:        s.sessions.Load(),
		DedupReplays:    s.dedupReplays.Load(),
		DedupRecords:    s.dedupRecords.Load(),
		DedupEvicted:    s.dedupEvicted.Load(),
		CheckpointFails: s.checkpointFails.Load(),
		Queries:         s.queries.Load(),
		QueryRecords:    s.queryRecords.Load(),
		Follows:         s.follows.Load(),
		QueryRejects:    s.queryRejects.Load(),
		Snapshots:       s.snapshots.Load(),
		SnapshotRecords: s.snapshotRecords.Load(),
		Parked:          uint64(max(s.parked.Load(), 0)),
		Parks:           s.parks.Load(),
		Wakes:           s.wakes.Load(),
	}
}

// Close drains and stops the listener: no new connections are accepted,
// every request already read is committed and acked, then all
// connections close. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		s.wg.Wait()
		return
	default:
		close(s.done)
	}
	if s.listener != nil {
		s.listener.Close()
	}
	// Kick every reader out of its blocking read. Frames already in the
	// readers' userspace buffers still decode (a deadline only fails the
	// next syscall), so a just-sent request usually still lands; the
	// committer then drains and acks everything read before the conn
	// closes. Writes get a grace deadline rather than an immediate
	// kick: drain acks and query-end frames to healthy clients must
	// still land, but a peer that stopped reading (a stalled follow
	// consumer) cannot block its writer goroutines — and therefore this
	// Wait — forever.
	now := time.Now()
	for c := range s.conns {
		c.SetReadDeadline(now)
		c.SetWriteDeadline(now.Add(s.opts.DrainWriteTimeout))
	}
	s.mu.Unlock()
	// Wake every parked connection so it can observe the drain and
	// finish; a connection parking concurrently finds the poller closed,
	// falls back to its sentry probe, and is kicked by the deadline set
	// above. Sentry-parked connections need no extra signal — the
	// deadline fails their blocked probe read directly.
	s.pollOnce.Do(func() {}) // claim the init slot: no poller springs up after this
	if p := s.poll; p != nil {
		p.close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		select {
		case <-s.done:
			s.mu.Unlock()
			conn.Close()
			return
		default:
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		go s.handle(conn)
	}
}

// request is one decoded batch request awaiting commit. A sessioned
// (v2) request carries the connection's idempotency session and its
// batch sequence number; a v1 request leaves session empty. The acts
// slice is drawn from the connection's freelist and returns there
// after the commit round that resolves it — including its fsync and
// ack write — completes.
type request struct {
	id       uint64
	acts     []logs.Action
	session  string
	batchSeq uint64
}

func (s *Server) handle(conn net.Conn) {
	st := newConnState(conn)
	grant, ok := s.identify(conn, st.replies)
	if !ok {
		s.finish(st)
		return
	}
	st.grant = grant
	s.serveConn(st)
}

// serveConn runs one serve cycle — a reader/committer goroutine pair —
// over an identified connection, repeating after each wake until the
// connection ends or parks. Parking tears the pair down entirely; the
// poller (or sentry probe) calls serveConn again when bytes arrive, so
// an idle connection's whole server-side presence is its connState.
func (s *Server) serveConn(st *connState) {
	reqs := make(chan request, s.opts.Queue)
	cq := newConnQueries()
	committerDone := make(chan struct{})
	go func() {
		defer close(committerDone)
		s.commitLoop(st, reqs)
	}()

	verdict := s.readLoop(st, reqs, cq)
	close(reqs)     // reader done: let the committer drain what was read
	close(cq.done)  // and stop this connection's queries and follows
	cq.wg.Wait()    // every query has written its end frame (or given up)
	<-committerDone // committed, acked and flushed — park/close is now graceful

	if verdict == readPark {
		s.park(st) // a poller event (or the sentry probe) re-runs serveConn
		return
	}
	s.finish(st)
}

// finish closes and unregisters a connection: the teardown half of
// accept.
func (s *Server) finish(st *connState) {
	st.conn.Close()
	s.mu.Lock()
	delete(s.conns, st.conn)
	s.mu.Unlock()
	s.active.Add(-1)
	s.wg.Done()
}

// identify runs the connection's TLS handshake (if any) and resolves
// its identity to a grant. A nil grant with ok=true means enforcement
// is off, or a cleartext connection that must still authenticate with
// its first frame (readLoop handles the token); ok=false means the
// connection was rejected and an id-0 error already sent.
func (s *Server) identify(conn net.Conn, replies *replyWriter) (*auth.Grant, bool) {
	tc, isTLS := conn.(*tls.Conn)
	if isTLS {
		// Handshake eagerly under a bound: a peer that connects and
		// stalls must not pin a handler goroutine forever, and the
		// handshake must not run lazily under the reply writer where a
		// failure is indistinguishable from a write error.
		conn.SetDeadline(time.Now().Add(s.opts.DrainWriteTimeout))
		if err := tc.Handshake(); err != nil {
			s.connFails.Add(1)
			return nil, false
		}
		conn.SetDeadline(time.Time{})
	}
	guard := s.opts.Auth
	if guard == nil {
		return nil, true
	}
	if isTLS {
		grant := guard.GrantForCert(tc.ConnectionState().PeerCertificates)
		if grant == nil {
			guard.ConnRejects.Add(1)
			s.connFails.Add(1)
			replies.sendError(0, "closing: client certificate names no known identity")
			return nil, false
		}
		return grant, true
	}
	// Cleartext with enforcement on: the first frame must be an auth
	// token (readLoop checks); no grant yet.
	return nil, true
}

// replyWriter is a connection's serialised reply channel: the reader's
// error replies and the committer's acks interleave under one mutex,
// sharing one scratch envelope encoder so steady-state acks allocate
// nothing.
type replyWriter struct {
	mu      sync.Mutex
	enc     *wire.StreamEncoder
	scratch *wire.Encoder
}

// write frames one reply envelope (no flush), reporting success.
func (rw *replyWriter) write(build func(*wire.Encoder)) bool {
	rw.scratch.Reset()
	build(rw.scratch)
	return rw.enc.Envelope(rw.scratch.Bytes()) == nil
}

// sendError writes and flushes one error reply, best effort.
func (rw *replyWriter) sendError(id uint64, msg string) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.write(func(e *wire.Encoder) { e.IngestError(id, msg) }) {
		rw.enc.Flush()
	}
}

// sendClusterMap writes and flushes one partition-map reply, reporting
// whether the connection is still writable.
func (rw *replyWriter) sendClusterMap(id uint64, m wire.ClusterMap, errMsg string) bool {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if !rw.write(func(e *wire.Encoder) { e.ClusterMapResp(id, m, errMsg) }) {
		return false
	}
	return rw.enc.Flush() == nil
}

// sendHelloAck writes and flushes the session handshake reply, best
// effort. Flushing immediately (rather than with the first ack) lets a
// resuming client learn its replay floor before deciding what to
// re-send.
func (rw *replyWriter) sendHelloAck(maxBatchSeq uint64) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.write(func(e *wire.Encoder) { e.IngestHelloAck(wire.IngestV2, maxBatchSeq) }) {
		rw.enc.Flush()
	}
}

// readVerdict is how a serve cycle's reader ended: the connection is
// done (close it) or merely idle (park it).
type readVerdict int

const (
	readClosed readVerdict = iota
	readPark
)

// readLoop decodes request frames until the connection ends (EOF, error
// or drain kick) or goes idle long enough to park, queueing ingest
// requests for the committer and dispatching query-family frames to
// their own goroutines. Malformed traffic gets an id-0 error reply;
// frame-level damage ends the loop. A drain kick (the read-deadline
// Close sets) must end the loop *silently*: the committer is about to
// ack everything read, and an id-0 error would make the client fail
// those very requests as connection-scoped.
//
// Idleness is probed with Peek(1) under a read deadline: a peek that
// times out has consumed nothing, so the stream is still exactly at a
// frame boundary — the one place a connection can park (or drain)
// without either side losing protocol state.
func (s *Server) readLoop(st *connState, reqs chan<- request, cq *connQueries) readVerdict {
	conn, replies, dec := st.conn, st.replies, st.dec
	for {
		if s.opts.IdlePark > 0 && dec.Buffered() == 0 {
			select {
			case <-s.done:
				// Drain already began; nothing is buffered, so there is
				// nothing left this reader owes the committer.
				return readClosed
			default:
			}
			conn.SetReadDeadline(time.Now().Add(s.opts.IdlePark))
			_, err := dec.Peek(1)
			conn.SetReadDeadline(time.Time{})
			if err != nil {
				if isConnKick(err) {
					if s.isDraining() {
						return readClosed
					}
					if len(reqs) == 0 && cq.active() == 0 {
						return readPark
					}
					continue // queries still running: stay resident, probe again
				}
				if !errors.Is(err, io.EOF) {
					replies.sendError(0, fmt.Sprintf("closing: %v", err))
					s.connFails.Add(1)
				}
				return readClosed
			}
		}
		env, err := dec.Envelope()
		if err != nil {
			if !errors.Is(err, io.EOF) && !isConnKick(err) {
				replies.sendError(0, fmt.Sprintf("closing: %v", err))
				s.connFails.Add(1)
			}
			return readClosed
		}
		if guard := s.opts.Auth; guard != nil && st.grant == nil {
			// Cleartext with enforcement on: nothing proceeds until a
			// token frame names a known identity. Anything else first is
			// an unauthenticated caller and closes the connection.
			m, err := wire.DecodeIngest(env)
			if err != nil || m.Op != wire.OpIngestAuth {
				guard.ConnRejects.Add(1)
				s.connFails.Add(1)
				replies.sendError(0, "closing: authentication required")
				return readClosed
			}
			if st.grant = guard.Map.ByToken(m.Token); st.grant == nil {
				guard.ConnRejects.Add(1)
				s.connFails.Add(1)
				replies.sendError(0, "closing: unknown authentication token")
				return readClosed
			}
			continue
		}
		grant := st.grant
		if op, err := wire.PeekOp(env); err == nil {
			if wire.IsQueryOp(op) {
				if !s.handleQueryMsg(cq, replies, env, grant) {
					return readClosed
				}
				continue
			}
			if wire.IsSnapshotOp(op) {
				if s.store == nil {
					replies.sendError(0, "closing: coordinator serves no snapshots; bootstrap from a partition leader")
					s.connFails.Add(1)
					return readClosed
				}
				if !s.handleSnapshotMsg(cq, replies, env, grant) {
					return readClosed
				}
				continue
			}
			if wire.IsClusterOp(op) {
				if !s.handleClusterMsg(replies, env) {
					return readClosed
				}
				continue
			}
		}
		// Decode into the connection's reusable message, drawing the
		// acts buffer from its freelist: the steady-state decode of the
		// hot path allocates only what the interner has not yet seen.
		if st.msg.Acts == nil {
			st.msg.Acts = st.getActs()
		}
		m := &st.msg
		if err := wire.DecodeIngestInto(env, m, st.intern); err != nil {
			replies.sendError(0, fmt.Sprintf("closing: bad ingest message: %v", err))
			s.connFails.Add(1)
			return readClosed
		}
		if m.Op == wire.OpIngestAuth {
			// Identity already established (client certificate, an earlier
			// token, or no enforcement at all): accepted and ignored, so
			// clients can send the frame uniformly.
			continue
		}
		if s.opts.ReadOnly {
			// A read replica: every append op is refused with a reply
			// naming the leader. Batches are rejected per request — the
			// connection survives for its queries and snapshots — but a
			// hello closes the connection: sessions exist only to make
			// appends idempotent, so a client opening one is an appender
			// that must re-dial the leader.
			msg := "read-only replica: appends must go to the leader"
			if s.opts.LeaderAddr != "" {
				msg = fmt.Sprintf("read-only replica: appends must go to the leader at %s", s.opts.LeaderAddr)
			}
			switch m.Op {
			case wire.OpIngestBatch, wire.OpIngestBatch2:
				s.rejects.Add(1)
				replies.sendError(m.ID, msg)
				continue
			default:
				replies.sendError(0, "closing: "+msg)
				s.connFails.Add(1)
				return readClosed
			}
		}
		if s.store == nil {
			// Coordinator mode: the read plane only. Hellos are still
			// answered — every client handshakes on dial, query-only ones
			// included — but batches are refused per request, pointing the
			// producer at the partition leaders.
			switch m.Op {
			case wire.OpIngestBatch, wire.OpIngestBatch2:
				s.rejects.Add(1)
				replies.sendError(m.ID, "coordinator: appends go to the partition leaders; fetch the cluster map and route by principal")
				continue
			}
		}
		if grant != nil && !grant.CanAppend() {
			// Same per-op shape as ReadOnly: batches are refused per
			// request, anything else on the append path (a hello opening
			// an idempotency session) closes the connection.
			msg := fmt.Sprintf("identity %q lacks the append role", grant.Name)
			switch m.Op {
			case wire.OpIngestBatch, wire.OpIngestBatch2:
				s.rejects.Add(1)
				s.opts.Auth.AppendRejects.Add(1)
				replies.sendError(m.ID, msg)
				continue
			default:
				s.opts.Auth.AppendRejects.Add(1)
				replies.sendError(0, "closing: "+msg)
				s.connFails.Add(1)
				return readClosed
			}
		}
		var req request
		switch m.Op {
		case wire.OpIngestHello:
			// The handshake binds the connection to an idempotency
			// session; it must come first and only once, so a batch can
			// never be ambiguous about its session.
			switch {
			case st.session != "":
				replies.sendError(0, "closing: duplicate hello")
			case m.Version != wire.IngestV2:
				replies.sendError(0, fmt.Sprintf("closing: unsupported ingest protocol version %d", m.Version))
			case m.Session == "":
				replies.sendError(0, "closing: empty session id")
			default:
				st.session = m.Session
				s.sessions.Add(1)
				floor := uint64(0)
				if s.store != nil {
					floor = s.store.Sessions().Max(st.session)
				}
				replies.sendHelloAck(floor)
				continue
			}
			s.connFails.Add(1)
			return readClosed
		case wire.OpIngestBatch:
			req = request{id: m.ID, acts: m.Acts}
		case wire.OpIngestBatch2:
			if st.session == "" {
				replies.sendError(0, "closing: sessioned batch before hello")
				s.connFails.Add(1)
				return readClosed
			}
			req = request{id: m.ID, acts: m.Acts, session: st.session, batchSeq: m.BatchSeq}
		default:
			replies.sendError(0, fmt.Sprintf("closing: unexpected opcode %#x", m.Op))
			s.connFails.Add(1)
			return readClosed
		}
		if grant != nil {
			if bad := outsideGrant(grant, req.acts); bad != "" {
				// The batch claims a principal the identity does not hold:
				// refused per request — "error means none appended" holds,
				// the connection and its other requests survive (and the
				// acts buffer stays in st.msg for the next decode).
				s.rejects.Add(1)
				s.opts.Auth.AppendRejects.Add(1)
				replies.sendError(req.id, fmt.Sprintf("identity %q may not append as principal %q", grant.Name, bad))
				continue
			}
		}
		if cv := s.opts.Cluster; cv != nil {
			if bad := outsideCluster(cv, req.acts); bad != "" {
				// The batch names a principal another leader owns under
				// this node's map: refused per request, same none-appended
				// guarantee as above, so the client may re-route the whole
				// batch to the owner under a fresh sequence. The "cluster:"
				// prefix and epoch are the routing client's refresh signal.
				s.rejects.Add(1)
				replies.sendError(req.id, fmt.Sprintf("cluster: not owner of principal %q at epoch %d: refetch the map and re-route", bad, cv.Epoch()))
				continue
			}
		}
		// The committer owns the acts buffer from here until the round
		// that resolves this request is fully acked; the next decode
		// draws a fresh buffer from the freelist.
		st.msg.Acts = nil
		s.requests.Add(1)
		select {
		case reqs <- req:
		case <-s.done:
			// Drain began while the queue was full: this request was
			// read but cannot be queued without blocking forever; drop
			// it unacked, like an unread one.
			return readClosed
		}
	}
}

// outsideGrant returns the first principal in acts the grant does not
// cover ("" if the whole batch is within the grant).
func outsideGrant(grant *auth.Grant, acts []logs.Action) string {
	for i := range acts {
		if !grant.AllowsPrincipal(acts[i].Principal) {
			return acts[i].Principal
		}
	}
	return ""
}

// outsideCluster returns the first principal in acts this node does not
// own under its partition map ("" if it owns the whole batch).
func outsideCluster(cv ClusterView, acts []logs.Action) string {
	for i := range acts {
		if !cv.Owns(acts[i].Principal) {
			return acts[i].Principal
		}
	}
	return ""
}

// handleClusterMsg answers one cluster-family message from the reader:
// a map request gets the node's partition map (or an error naming the
// absence of one); anything else in the family only flows server →
// client and closes the connection. The map is routing metadata, not
// log data, so any authenticated connection may fetch it regardless of
// role.
func (s *Server) handleClusterMsg(replies *replyWriter, env []byte) bool {
	m, err := wire.DecodeCluster(env)
	if err != nil {
		replies.sendError(0, fmt.Sprintf("closing: bad cluster message: %v", err))
		s.connFails.Add(1)
		return false
	}
	if m.Op != wire.OpClusterMapReq || m.ID == 0 {
		replies.sendError(0, fmt.Sprintf("closing: unexpected cluster opcode %#x from client", m.Op))
		s.connFails.Add(1)
		return false
	}
	if cv := s.opts.Cluster; cv != nil {
		return replies.sendClusterMap(m.ID, cv.WireMap(), "")
	}
	return replies.sendClusterMap(m.ID, wire.ClusterMap{}, "cluster: no partition map configured on this node")
}

// isConnKick reports whether a read error is the expected end of a
// connection (drain deadline kick or a peer reset) rather than protocol
// damage worth counting as a failure.
func isConnKick(err error) bool {
	var nerr net.Error
	return errors.As(err, &nerr) && nerr.Timeout()
}

// commitLoop is the connection's committer: it drains whatever requests
// have queued, commits them in one store round, and acks each with its
// sub-block of the assigned sequence range. All round-scoped scratch —
// the outcome table, the coalesced action slice, the checkpoint entries
// — lives in the connection's commitScratch and is reused round after
// round, so a warm committer allocates nothing per round.
func (s *Server) commitLoop(st *connState, reqs <-chan request) {
	cs := &st.cs
	for {
		req, ok := <-reqs
		if !ok {
			return
		}
		cs.round = append(cs.round[:0], req)
		total := len(req.acts)
	coalesce:
		for total < s.opts.MaxRoundActions {
			select {
			case r, more := <-reqs:
				if !more {
					s.commitRound(st, cs)
					return
				}
				cs.round = append(cs.round, r)
				total += len(r.acts)
			default:
				break coalesce
			}
		}
		if !s.commitRound(st, cs) {
			// The peer is unreachable or the store failed mid-write:
			// further commits would append actions whose acks no one can
			// trust. Drain the queue so the reader never blocks, but
			// drop the requests.
			for range reqs {
				s.connFails.Add(1)
			}
			st.conn.Close()
			return
		}
	}
}

// retryableAlone reports whether a failed coalesced AppendBatch is
// known to have written nothing, making a per-request retry safe.
// Validation and shard-limit failures are detected before any byte is
// written; anything else (an I/O error) may have committed a prefix of
// the round, and re-appending would duplicate records.
func retryableAlone(err error) bool {
	return errors.Is(err, store.ErrInvalidAction) || errors.Is(err, store.ErrShardLimit)
}

// outcome is one request's resolved reply, computed during the commit
// phase and written afterwards.
type outcome struct {
	kind  byte // oNone (unresolved), oAck, oReject, oAlias
	base  uint64
	count uint64
	msg   string
	alias int // oAlias: index of the round-mate this request duplicates
}

const (
	oNone byte = iota
	oAck
	oReject
	oAlias
)

// dedupKey identifies one sessioned batch inside a commit round.
type dedupKey struct {
	session  string
	batchSeq uint64
}

// commitScratch is a committer's round-scoped working memory, owned by
// the connection and reused round after round (serve cycles never
// overlap, so a single instance per connection suffices). Everything
// here is either plain value state or slices whose elements the store
// copies out of before the round ends.
type commitScratch struct {
	round    []request
	outcomes []outcome
	toCommit []int
	all      []logs.Action
	entries  []wire.SessionEntry
	claimed  map[dedupKey]int
}

// commitRound appends one coalesced round (cs.round) and writes its
// replies, reporting whether the connection is still usable. When it
// returns, every request's acts buffer has been handed back to the
// connection's freelist: the store has copied the actions it kept, the
// acks are on the wire, and nothing references the buffers again.
//
// Sessioned requests go through the store's session table first: a
// batch sequence the table holds is re-acked with its original block
// (never re-appended), one outside the dedup window is rejected, and
// everything genuinely new is committed and then checkpointed — entry
// before ack — under the table lock, so a replay racing its original
// commit on another connection blocks and then dedups. Store work runs
// first and replies are written afterwards, preserving round order.
func (s *Server) commitRound(st *connState, cs *commitScratch) bool {
	replies := st.replies
	round := cs.round
	outcomes := cs.outcomes[:0]
	for range round {
		outcomes = append(outcomes, outcome{})
	}
	cs.outcomes = outcomes
	fatal := "" // set: the connection must close after the resolved replies

	sessioned := false
	for i := range round {
		if round[i].session != "" {
			sessioned = true
			break
		}
	}
	var tab *store.Sessions
	if sessioned {
		tab = s.store.Sessions()
		tab.Lock()
	}

	// Classify: replays and evictions resolve now; the rest commits.
	// Claims are strictly intra-round (committed rounds are visible via
	// the table itself), so the map clears between rounds.
	claimed := cs.claimed
	if claimed != nil {
		clear(claimed)
	}
	toCommit := cs.toCommit[:0]
	for i, r := range round {
		if r.session == "" {
			toCommit = append(toCommit, i)
			continue
		}
		if claimed == nil {
			claimed = make(map[dedupKey]int)
			cs.claimed = claimed
		}
		key := dedupKey{r.session, r.batchSeq}
		if j, dup := claimed[key]; dup {
			// The same batch sequence twice in one round (a client bug,
			// or a replay racing its original through one connection):
			// resolve to whatever its twin gets.
			outcomes[i] = outcome{kind: oAlias, alias: j}
			continue
		}
		base, count, res := tab.LookupLocked(r.session, r.batchSeq)
		switch res {
		case store.SessionReplay:
			outcomes[i] = outcome{kind: oAck, base: base, count: count}
			s.dedupReplays.Add(1)
			s.dedupRecords.Add(uint64(len(r.acts)))
		case store.SessionEvicted:
			outcomes[i] = outcome{kind: oReject, msg: fmt.Sprintf("batch seq %d of session %q evicted from dedup window: commit state unknowable", r.batchSeq, r.session)}
			s.dedupEvicted.Add(1)
		default:
			claimed[key] = i
			toCommit = append(toCommit, i)
		}
	}
	cs.toCommit = toCommit

	entries := cs.entries[:0]
	record := func(i int, base uint64) {
		r := round[i]
		outcomes[i] = outcome{kind: oAck, base: base, count: uint64(len(r.acts))}
		if r.session != "" {
			entries = append(entries, wire.SessionEntry{Session: r.session, BatchSeq: r.batchSeq, Base: base, Count: uint64(len(r.acts))})
		}
	}
	if len(toCommit) > 0 {
		all := cs.all[:0]
		for _, i := range toCommit {
			all = append(all, round[i].acts...)
		}
		cs.all = all
		base, err := s.store.AppendBatch(all)
		switch {
		case err == nil:
			s.commits.Add(1)
			s.records.Add(uint64(len(all)))
			off := uint64(0)
			for _, i := range toCommit {
				record(i, base+off)
				off += uint64(len(round[i].acts))
			}
		case !retryableAlone(err):
			// The store may hold a prefix of the round: no reply can
			// honour the protocol's "error means none appended" promise,
			// so report a connection-scoped failure and let the client's
			// replay discipline take over.
			s.connFails.Add(1)
			fatal = fmt.Sprintf("closing: commit failed: %v", err)
		default:
			// The coalesced batch was rejected before anything was
			// written. Retry each request on its own so one bad request
			// rejects alone instead of failing the round's innocent
			// bystanders.
			for _, i := range toCommit {
				r := round[i]
				rbase, rerr := s.store.AppendBatch(r.acts)
				switch {
				case rerr == nil:
					s.commits.Add(1)
					s.records.Add(uint64(len(r.acts)))
					record(i, rbase)
				case retryableAlone(rerr):
					s.rejects.Add(1)
					outcomes[i] = outcome{kind: oReject, msg: rerr.Error()}
				default: // I/O failure mid-isolation: same unknowable state as above
					s.connFails.Add(1)
					fatal = fmt.Sprintf("closing: commit failed: %v", rerr)
				}
				if fatal != "" {
					break
				}
			}
		}
	}
	if len(entries) > 0 {
		// Checkpoint before any ack leaves the process: a re-ack after
		// restart is only trustworthy if every acked sessioned batch has
		// its entry on disk first. A failed checkpoint does not undo the
		// commit — the acks below stay truthful — it just loses replay
		// protection for these batches, which the counter surfaces.
		if err := tab.AppendLocked(entries); err != nil {
			s.checkpointFails.Add(uint64(len(entries)))
		}
	}
	if sessioned {
		tab.Unlock()
	}
	cs.entries = entries

	usable := s.writeRoundReplies(replies, round, outcomes, fatal)

	// Every request is now resolved with its replies on the wire (or
	// the connection is condemned): the store copied what it kept, so
	// the acts buffers go back to the connection's freelist for the
	// reader to decode into again.
	for i := range round {
		st.putActs(round[i].acts)
		round[i] = request{}
	}
	return usable
}

// writeRoundReplies writes a round's resolved replies in round order,
// then any fatal notice, reporting whether the connection is still
// usable.
func (s *Server) writeRoundReplies(replies *replyWriter, round []request, outcomes []outcome, fatal string) bool {
	replies.mu.Lock()
	defer replies.mu.Unlock()
	for i, o := range outcomes {
		if o.kind == oAlias {
			o = outcomes[o.alias]
			if o.kind == oAck {
				s.dedupReplays.Add(1)
				s.dedupRecords.Add(uint64(len(round[i].acts)))
			}
		}
		var ok bool
		switch o.kind {
		case oAck:
			ok = replies.write(func(e *wire.Encoder) { e.IngestAck(round[i].id, o.base, o.count) })
		case oReject:
			ok = replies.write(func(e *wire.Encoder) { e.IngestError(round[i].id, o.msg) })
		default: // unresolved: the fatal failure struck before this request committed
			continue
		}
		if !ok {
			return false
		}
	}
	if fatal != "" {
		if replies.write(func(e *wire.Encoder) { e.IngestError(0, fatal) }) {
			replies.enc.Flush()
		}
		return false
	}
	return replies.enc.Flush() == nil
}
