//go:build !linux

package ingest

// Non-Linux platforms have no shared readiness poller; parked
// connections fall back to the sentry-goroutine probe in park.go (one
// blocked goroutine per parked connection — still half the goroutines
// and none of the buffers of a resident connection).

type netPoller struct{}

func newNetPoller(func(*connState)) (*netPoller, error) {
	return nil, errPollerUnsupported
}

func (p *netPoller) park(int, *connState) error { return errPollerUnsupported }

func (p *netPoller) close() {}
