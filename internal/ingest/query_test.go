package ingest

// Raw-wire coverage of the binary read path: queries stream chunks and
// end with a cursor, interleave with ingest traffic on one connection,
// reject what they must, cancel cleanly, and follow live appends.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/trust"
	"repro/internal/wire"
)

func (rc *rawConn) sendQuery(id uint64, spec wire.QuerySpec) {
	rc.t.Helper()
	e := wire.NewEncoder()
	e.Query(id, spec)
	if err := rc.enc.Envelope(e.Bytes()); err != nil {
		rc.t.Fatal(err)
	}
	rc.flush()
}

func (rc *rawConn) sendCancel(id uint64) {
	rc.t.Helper()
	e := wire.NewEncoder()
	e.QueryCancel(id)
	if err := rc.enc.Envelope(e.Bytes()); err != nil {
		rc.t.Fatal(err)
	}
	rc.flush()
}

func (rc *rawConn) readQueryMsg() (wire.QueryMsg, error) {
	rc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	env, err := rc.dec.Envelope()
	if err != nil {
		return wire.QueryMsg{}, err
	}
	return wire.DecodeQuery(env)
}

// collect reads one query's chunks until its end frame, returning the
// records and the end cursor.
func (rc *rawConn) collect(id uint64) ([]wire.Record, string) {
	rc.t.Helper()
	var recs []wire.Record
	for {
		m, err := rc.readQueryMsg()
		if err != nil {
			rc.t.Fatalf("reading query reply: %v", err)
		}
		if m.ID != id {
			rc.t.Fatalf("reply for id %d while collecting %d", m.ID, id)
		}
		switch m.Op {
		case wire.OpQueryChunk:
			recs = append(recs, m.Recs...)
		case wire.OpQueryEnd:
			if m.Err != "" {
				rc.t.Fatalf("query failed: %s", m.Err)
			}
			return recs, m.Cursor
		default:
			rc.t.Fatalf("unexpected op %#x", m.Op)
		}
	}
}

// TestQueryOverWire: a populated store streams back over OpQuery in
// ascending order, honouring filters, and a paginated resume via the
// end cursor covers the remainder exactly.
func TestQueryOverWire(t *testing.T) {
	_, st, addr := newTestServer(t, Options{})
	for i := 0; i < 500; i++ {
		p := "a"
		if i%2 == 1 {
			p = "b"
		}
		if _, err := st.Append(act(p, i)); err != nil {
			t.Fatal(err)
		}
	}
	rc := dialRaw(t, addr)

	// Whole-log query streams everything in order.
	rc.sendQuery(1, wire.QuerySpec{})
	recs, cursor := rc.collect(1)
	if len(recs) != 500 || cursor != "" {
		t.Fatalf("got %d records, cursor %q", len(recs), cursor)
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("position %d holds seq %d", i, r.Seq)
		}
	}

	// Shard-filtered with an explicit limit: a page plus resume cursor.
	rc.sendQuery(2, wire.QuerySpec{Principal: "b", Limit: 100})
	recs, cursor = rc.collect(2)
	if len(recs) != 100 || cursor == "" {
		t.Fatalf("limited query: %d records, cursor %q", len(recs), cursor)
	}
	rc.sendQuery(3, wire.QuerySpec{Principal: "b", Cursor: cursor})
	rest, cursor := rc.collect(3)
	if len(recs)+len(rest) != 250 || cursor != "" {
		t.Fatalf("resume: %d + %d records, cursor %q", len(recs), len(rest), cursor)
	}
	for _, r := range append(recs, rest...) {
		if r.Act.Principal != "b" {
			t.Fatalf("shard filter leaked %+v", r)
		}
	}

	// Tail query serves the most recent records ascending.
	rc.sendQuery(4, wire.QuerySpec{Tail: true, Limit: 10})
	recs, _ = rc.collect(4)
	if len(recs) != 10 || recs[0].Seq != 490 || recs[9].Seq != 499 {
		t.Fatalf("tail query returned %d records starting at %d", len(recs), recs[0].Seq)
	}
}

// TestQueryInterleavesWithIngest: queries and batch appends pipeline on
// one connection; both families resolve correctly by id.
func TestQueryInterleavesWithIngest(t *testing.T) {
	_, st, addr := newTestServer(t, Options{})
	for i := 0; i < 50; i++ {
		if _, err := st.Append(act("seed", i)); err != nil {
			t.Fatal(err)
		}
	}
	rc := dialRaw(t, addr)
	rc.sendBatch(7, acts("w", 0, 20))
	rc.sendQuery(8, wire.QuerySpec{Principal: "seed"})
	rc.flush()

	var gotAck bool
	var recs []wire.Record
	for !gotAck || recs == nil {
		rc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
		env, err := rc.dec.Envelope()
		if err != nil {
			t.Fatal(err)
		}
		op, err := wire.PeekOp(env)
		if err != nil {
			t.Fatal(err)
		}
		if wire.IsQueryOp(op) {
			m, err := wire.DecodeQuery(env)
			if err != nil {
				t.Fatal(err)
			}
			switch m.Op {
			case wire.OpQueryChunk:
				recs = append(recs, m.Recs...)
			case wire.OpQueryEnd:
				if m.Err != "" || len(recs) != 50 {
					t.Fatalf("query: %d records, err %q", len(recs), m.Err)
				}
			}
			continue
		}
		m, err := wire.DecodeIngest(env)
		if err != nil {
			t.Fatal(err)
		}
		if m.Op != wire.OpIngestAck || m.ID != 7 || m.Count != 20 {
			t.Fatalf("unexpected ingest reply %+v", m)
		}
		gotAck = true
	}
}

// TestQueryRejections: denied shards and bad cursors fail the query
// (not the connection); client-sent chunk frames and id 0 kill the
// connection.
func TestQueryRejections(t *testing.T) {
	policy := trust.NewDisclosurePolicy().HideFrom("secret", "eve")
	srv, st, addr := newTestServer(t, Options{Policy: policy, MaxQueriesPerConn: 2})
	if _, err := st.Append(act("secret", 0)); err != nil {
		t.Fatal(err)
	}
	rc := dialRaw(t, addr)

	rc.sendQuery(1, wire.QuerySpec{Principal: "secret", Observer: "eve"})
	m, err := rc.readQueryMsg()
	if err != nil || m.Op != wire.OpQueryEnd || !strings.Contains(m.Err, "does not disclose") {
		t.Fatalf("denied query: %+v %v", m, err)
	}
	rc.sendQuery(2, wire.QuerySpec{Cursor: "garbage!"})
	if m, err = rc.readQueryMsg(); err != nil || m.Err == "" {
		t.Fatalf("bad cursor: %+v %v", m, err)
	}
	// The connection survived both rejections.
	rc.sendQuery(3, wire.QuerySpec{Principal: "secret", Observer: "friend"})
	if recs, _ := rc.collect(3); len(recs) != 1 {
		t.Fatalf("post-rejection query got %d records", len(recs))
	}
	if rj := srv.Stats().QueryRejects; rj != 2 {
		t.Fatalf("reject counter %d", rj)
	}

	// id 0 is reserved: the reply is an ingest-family connection-scoped
	// error and the connection closes.
	rc2 := dialRaw(t, addr)
	rc2.sendQuery(0, wire.QuerySpec{})
	im, err := rc2.readMsg()
	if err != nil || im.Op != wire.OpIngestError || im.ID != 0 {
		t.Fatalf("id-0 query: %+v %v", im, err)
	}
}

// TestFollowOverWire: a follow streams history, then live appends, and
// a cancel ends it with a cursor that resumes without gaps.
func TestFollowOverWire(t *testing.T) {
	_, st, addr := newTestServer(t, Options{})
	for i := 0; i < 30; i++ {
		if _, err := st.Append(act("p", i)); err != nil {
			t.Fatal(err)
		}
	}
	rc := dialRaw(t, addr)
	rc.sendQuery(1, wire.QuerySpec{Follow: true})

	var recs []wire.Record
	for len(recs) < 30 {
		m, err := rc.readQueryMsg()
		if err != nil || m.Op != wire.OpQueryChunk {
			t.Fatalf("history chunk: %+v %v", m, err)
		}
		recs = append(recs, m.Recs...)
	}

	// Live appends stream without another request.
	for i := 30; i < 40; i++ {
		if _, err := st.Append(act("p", i)); err != nil {
			t.Fatal(err)
		}
	}
	for len(recs) < 40 {
		m, err := rc.readQueryMsg()
		if err != nil || m.Op != wire.OpQueryChunk {
			t.Fatalf("live chunk: %+v %v", m, err)
		}
		recs = append(recs, m.Recs...)
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("follow position %d holds seq %d", i, r.Seq)
		}
	}

	// Cancel ends the follow with a resume cursor.
	rc.sendCancel(1)
	var cursor string
	for {
		m, err := rc.readQueryMsg()
		if err != nil {
			t.Fatal(err)
		}
		if m.Op == wire.OpQueryEnd {
			if m.Err != "" || m.Cursor == "" {
				t.Fatalf("follow end: %+v", m)
			}
			cursor = m.Cursor
			break
		}
		recs = append(recs, m.Recs...) // chunks racing the cancel
	}

	// The cursor resumes exactly past everything served.
	for i := 40; i < 45; i++ {
		if _, err := st.Append(act("p", i)); err != nil {
			t.Fatal(err)
		}
	}
	rc.sendQuery(2, wire.QuerySpec{Cursor: cursor})
	rest, _ := rc.collect(2)
	if len(recs)+len(rest) != 45 {
		t.Fatalf("resume after cancel: %d + %d records", len(recs), len(rest))
	}
	if rest[0].Seq != recs[len(recs)-1].Seq+1 {
		t.Fatalf("resume gap: %d then %d", recs[len(recs)-1].Seq, rest[0].Seq)
	}
}

// TestFollowDrainOnClose: server Close ends a live follow with a
// resume-cursor end frame before the connection drops.
func TestFollowDrainOnClose(t *testing.T) {
	srv, st, addr := newTestServer(t, Options{})
	for i := 0; i < 10; i++ {
		if _, err := st.Append(act("p", i)); err != nil {
			t.Fatal(err)
		}
	}
	rc := dialRaw(t, addr)
	rc.sendQuery(1, wire.QuerySpec{Follow: true})
	var recs []wire.Record
	for len(recs) < 10 {
		m, err := rc.readQueryMsg()
		if err != nil || m.Op != wire.OpQueryChunk {
			t.Fatalf("history: %+v %v", m, err)
		}
		recs = append(recs, m.Recs...)
	}
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	m, err := rc.readQueryMsg()
	if err != nil || m.Op != wire.OpQueryEnd || m.Cursor == "" {
		t.Fatalf("drain end: %+v %v", m, err)
	}
	<-done
}

// TestFollowTailBacklogHonoursLimit: a tail follow with an explicit
// backlog larger than one chunk serves exactly that many history
// records (in chunked frames), not a chunk-size truncation.
func TestFollowTailBacklogHonoursLimit(t *testing.T) {
	_, st, addr := newTestServer(t, Options{})
	batch := acts("p", 0, 6000)
	if _, err := st.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	rc := dialRaw(t, addr)
	rc.sendQuery(1, wire.QuerySpec{Follow: true, Tail: true, Limit: 5000})
	var recs []wire.Record
	for len(recs) < 5000 {
		m, err := rc.readQueryMsg()
		if err != nil || m.Op != wire.OpQueryChunk {
			t.Fatalf("backlog chunk: %+v %v", m, err)
		}
		recs = append(recs, m.Recs...)
	}
	if len(recs) != 5000 || recs[0].Seq != 1000 || recs[4999].Seq != 5999 {
		t.Fatalf("backlog %d records, seqs %d..%d", len(recs), recs[0].Seq, recs[len(recs)-1].Seq)
	}
}

// TestQueryCapPerConn: the per-connection cap rejects the follow past
// it and the reject names the cap.
func TestQueryCapPerConn(t *testing.T) {
	_, st, addr := newTestServer(t, Options{MaxQueriesPerConn: 1})
	if _, err := st.Append(act("p", 0)); err != nil {
		t.Fatal(err)
	}
	rc := dialRaw(t, addr)
	rc.sendQuery(1, wire.QuerySpec{Follow: true}) // occupies the one slot
	m, err := rc.readQueryMsg()
	if err != nil || m.Op != wire.OpQueryChunk {
		t.Fatalf("first follow: %+v %v", m, err)
	}
	rc.sendQuery(2, wire.QuerySpec{})
	for {
		if m, err = rc.readQueryMsg(); err != nil {
			t.Fatal(err)
		}
		if m.ID == 2 {
			break
		}
	}
	if m.Op != wire.OpQueryEnd || !strings.Contains(m.Err, "cap") {
		t.Fatalf("over-cap query: %+v", m)
	}
}

// TestQueryRedactionParity: the binary path redacts exactly like the
// engine it shares with HTTP.
func TestQueryRedactionParity(t *testing.T) {
	policy := trust.NewDisclosurePolicy().HideFrom("s")
	_, st, addr := newTestServer(t, Options{Policy: policy})
	if _, err := st.Append(act("a", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(act("s", 1)); err != nil {
		t.Fatal(err)
	}
	rc := dialRaw(t, addr)
	rc.sendQuery(1, wire.QuerySpec{Observer: "anyone"})
	recs, _ := rc.collect(1)
	e := query.NewEngine(st, policy)
	page, err := e.Run(query.Query{Observer: "anyone"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(page.Records) {
		t.Fatalf("binary %d records, engine %d", len(recs), len(page.Records))
	}
	for i := range recs {
		if recs[i] != page.Records[i] {
			t.Fatalf("record %d diverges: %+v vs %+v", i, recs[i], page.Records[i])
		}
	}
	if recs[1].Act.Principal != trust.RedactedPrincipal {
		t.Fatalf("hidden principal served unmasked: %+v", recs[1])
	}
}
