package ingest

// Idle-connection parking: the piece of the listener that makes 10k
// mostly-idle monitored middlewares cost approximately nothing.
//
// A connection that has been quiet for Options.IdlePark — nothing
// buffered, nothing queued, no queries running — tears down its
// reader/committer goroutine pair, releases its stream buffers back to
// the wire pools, and registers its socket with a shared readiness
// poller. On Linux that poller is one epoll instance (poller_linux.go)
// watching every parked socket: a parked connection costs its file
// descriptor and a connState, zero goroutines. Elsewhere (or when a
// connection's fd cannot be extracted) a sentry goroutine performs a
// single blocking one-byte read — still one goroutine instead of two,
// and no 64 KiB buffer pair.
//
// Parking happens only with the stream at a frame boundary (the
// Peek-under-deadline probe in readLoop consumes nothing), so neither
// side can observe it except as scheduling latency on the first frame
// after an idle gap. The first byte from the peer — or the drain
// deadline Close sets — wakes the connection, which re-enters
// serveConn with all its protocol state (grant, session, interner,
// dedup position) intact in its connState.

import (
	"crypto/tls"
	"errors"
	"net"
	"sync"
	"syscall"

	"repro/internal/auth"
	"repro/internal/logs"
	"repro/internal/wire"
)

var (
	errPollerClosed      = errors.New("ingest: poller closed")
	errPollerUnsupported = errors.New("ingest: no readiness poller on this platform")
)

// maxPooledActs bounds the capacity of an acts buffer the freelist
// keeps; anything larger is dropped to the GC so one huge batch cannot
// pin its worth of memory on the connection forever.
const maxPooledActs = 1 << 12

// maxFreelist bounds how many acts buffers a connection retains.
const maxFreelist = 64

// parkedScratchCap is the largest reply scratch a parked connection
// keeps; a scratch grown past it (by a large query chunk) is dropped
// on park so 10k parked connections cannot pin 10k chunk-sized
// buffers.
const parkedScratchCap = 4 << 10

// connState is a connection's whole server-side identity: everything
// that must survive a park/wake cycle. While the connection is active
// a reader and a committer share it; while parked it is all that
// remains.
type connState struct {
	conn    net.Conn
	rd      connReader   // decoder source: conn plus a one-byte pushback
	replies *replyWriter // serialised reply channel (reader errors + committer acks)
	dec     *wire.StreamDecoder
	intern  *wire.Interner
	grant   *auth.Grant

	session string         // v2 idempotency session ("" = sessionless)
	msg     wire.IngestMsg // reusable decode target; Acts drawn from the freelist
	cs      commitScratch  // the committer's round-scoped working memory

	freeMu sync.Mutex
	free   [][]logs.Action // recycled acts buffers, reader ⇄ committer
}

func newConnState(conn net.Conn) *connState {
	st := &connState{conn: conn}
	st.rd.c = conn
	st.replies = &replyWriter{enc: wire.NewStreamEncoder(conn), scratch: wire.NewEncoder()}
	st.intern = wire.NewInterner()
	st.dec = wire.NewStreamDecoder(&st.rd)
	st.dec.SetInterner(st.intern)
	return st
}

// connReader is the decoder's view of the connection: the raw conn
// plus room for one pushed-back byte. The sentry park path reads one
// byte directly from the conn to learn the peer woke up; pushing it
// back here keeps the stream intact without holding a buffer while
// parked.
type connReader struct {
	c   net.Conn
	pb  byte
	has bool
}

func (r *connReader) Read(p []byte) (int, error) {
	if r.has {
		r.has = false
		p[0] = r.pb
		return 1, nil
	}
	return r.c.Read(p)
}

// getActs draws a recycled acts buffer from the freelist (nil if none:
// the decoder allocates on first use and the buffer enters circulation
// when its round completes).
func (st *connState) getActs() []logs.Action {
	st.freeMu.Lock()
	defer st.freeMu.Unlock()
	n := len(st.free)
	if n == 0 {
		return nil
	}
	a := st.free[n-1]
	st.free[n-1] = nil
	st.free = st.free[:n-1]
	return a
}

// poisonAction is what a recycled acts buffer is smeared with when the
// wire pools run in poison mode (testutil.PoisonPools): any component
// still reading a buffer after it was handed back sees this instead of
// the committed data, turning a silent aliasing bug into a loud
// mismatch.
var poisonAction = logs.Action{Principal: "\xdb\xdbpooled-acts-poison\xdb\xdb"}

// putActs returns an acts buffer to the freelist once nothing
// references it: after the commit round that consumed it has fsynced
// and written its acks.
func (st *connState) putActs(a []logs.Action) {
	if cap(a) == 0 || cap(a) > maxPooledActs {
		return
	}
	if wire.PoolPoisoned() {
		a = a[:cap(a)]
		for i := range a {
			a[i] = poisonAction
		}
	}
	st.freeMu.Lock()
	defer st.freeMu.Unlock()
	if len(st.free) < maxFreelist {
		st.free = append(st.free, a[:0])
	}
}

// dropScratch releases everything a parked connection need not hold:
// the freelist's acts buffers, the committer scratch, and the decode
// target. Protocol state (grant, session, interner) stays.
func (st *connState) dropScratch() {
	st.freeMu.Lock()
	st.free = nil
	st.freeMu.Unlock()
	st.cs = commitScratch{}
	st.msg = wire.IngestMsg{}
}

// release flushes and returns the reply writer's stream buffer to the
// wire pool and drops an oversized scratch, the write-side half of
// parking.
func (rw *replyWriter) release() {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	rw.enc.Flush()
	rw.enc.ReleaseBuffers()
	if rw.scratch.Cap() > parkedScratchCap {
		rw.scratch = wire.NewEncoder()
	}
}

// isDraining reports whether Close has begun.
func (s *Server) isDraining() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// poller lazily creates the shared readiness poller (nil where
// unsupported, or once Close has claimed the init slot).
func (s *Server) poller() *netPoller {
	s.pollOnce.Do(func() {
		if p, err := newNetPoller(s.wake); err == nil {
			s.poll = p
		}
	})
	return s.poll
}

// park transfers an idle connection from its serve cycle to the
// poller. Called with both cycle goroutines already stopped and every
// queued request acked, so the buffers being released are guaranteed
// quiet.
func (s *Server) park(st *connState) {
	st.dropScratch()
	st.replies.release()
	st.dec.ReleaseBuffers()
	s.parks.Add(1)
	s.parked.Add(1)
	if p := s.poller(); p != nil {
		if fd, ok := connFD(st.conn); ok {
			if err := p.park(fd, st); err == nil {
				return
			}
		}
	}
	// Portable fallback: a sentry goroutine blocked in a one-byte read.
	// The byte (if one arrives) is pushed back into the decoder's
	// source, so the stream stays exactly at its frame boundary. A
	// read error wakes the connection too — the reborn readLoop
	// re-observes it (EOF and resets repeat; a drain kick re-fires via
	// the deadline already set by Close).
	go func() {
		var b [1]byte
		n, _ := st.rd.c.Read(b[:])
		if n == 1 {
			st.rd.pb = b[0]
			st.rd.has = true
		}
		s.wake(st)
	}()
}

// wake brings a parked connection back: a fresh serve cycle picks its
// connState up exactly where park left it.
func (s *Server) wake(st *connState) {
	s.parked.Add(-1)
	s.wakes.Add(1)
	go s.serveConn(st)
}

// connFD extracts a connection's file descriptor for the poller. TLS
// connections park by their underlying socket: a timed-out Peek proves
// the tls.Conn holds no undelivered plaintext (its Read drains
// buffered records before touching the socket), so readiness of the
// socket is exactly readiness of the stream.
func connFD(c net.Conn) (int, bool) {
	if tc, ok := c.(*tls.Conn); ok {
		c = tc.NetConn()
	}
	sc, ok := c.(syscall.Conn)
	if !ok {
		return 0, false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return 0, false
	}
	fd := -1
	if cerr := rc.Control(func(f uintptr) { fd = int(f) }); cerr != nil || fd < 0 {
		return 0, false
	}
	return fd, true
}
