//go:build linux

package ingest

// netPoller is the Linux readiness poller: one epoll instance (and one
// goroutine blocked in epoll_wait) watching every parked connection in
// the server. A parked socket is registered EPOLLONESHOT, so each
// registration produces exactly one wake — the woken connection's
// serve cycle owns the socket again until it parks again.
//
// The Go runtime's own netpoller already has these descriptors in
// non-blocking mode; an fd may belong to any number of epoll interest
// lists, so watching it here too is benign. The poller never reads —
// readiness only — which is what keeps parking invisible to the wire
// protocol.

import (
	"sync"
	"syscall"
)

type netPoller struct {
	epfd   int
	wakeR  int // pipe read end, registered in the epoll set: the close signal
	wakeW  int
	onWake func(*connState)

	mu     sync.Mutex
	closed bool
	parked map[int]*connState
}

func newNetPoller(onWake func(*connState)) (*netPoller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pfds [2]int
	if err := syscall.Pipe2(pfds[:], syscall.O_CLOEXEC|syscall.O_NONBLOCK); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	p := &netPoller{epfd: epfd, wakeR: pfds[0], wakeW: pfds[1], onWake: onWake, parked: make(map[int]*connState)}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(p.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p.wakeR, &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pfds[0])
		syscall.Close(pfds[1])
		return nil, err
	}
	go p.run()
	return p, nil
}

// park registers a connection's socket for a one-shot readable (or
// peer-hangup) wake.
func (p *netPoller) park(fd int, st *connState) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errPollerClosed
	}
	ev := syscall.EpollEvent{
		Events: syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT,
		Fd:     int32(fd),
	}
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		return err
	}
	p.parked[fd] = st
	return nil
}

func (p *netPoller) run() {
	events := make([]syscall.EpollEvent, 128)
	for {
		n, err := syscall.EpollWait(p.epfd, events, -1)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			return
		}
		for i := 0; i < n; i++ {
			fd := int(events[i].Fd)
			if fd == p.wakeR {
				// close(): every parked connection has already been woken
				// (close takes the whole map first), so any conn events
				// remaining in this batch belong to already-woken conns
				// and are safely dropped with the instance.
				syscall.Close(p.epfd)
				syscall.Close(p.wakeR)
				return
			}
			p.mu.Lock()
			st := p.parked[fd]
			if st != nil {
				delete(p.parked, fd)
				syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, fd, nil)
			}
			p.mu.Unlock()
			if st != nil {
				p.onWake(st)
			}
		}
	}
}

// close wakes every parked connection (each re-enters its serve cycle,
// observes the drain, and finishes) and shuts the instance down. New
// park calls fail from this point on.
func (p *netPoller) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	parked := p.parked
	p.parked = nil
	p.mu.Unlock()
	syscall.Write(p.wakeW, []byte{1})
	syscall.Close(p.wakeW)
	for _, st := range parked {
		p.onWake(st)
	}
}
