package ingest

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/logs"
	"repro/internal/store"
	"repro/internal/wire"
)

func newTestServer(t *testing.T, opts Options) (*Server, *store.Store, string) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := NewServer(st, opts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, st, addr
}

type rawConn struct {
	t   *testing.T
	c   net.Conn
	enc *wire.StreamEncoder
	dec *wire.StreamDecoder
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawConn{t: t, c: c, enc: wire.NewStreamEncoder(c), dec: wire.NewStreamDecoder(c)}
}

func (rc *rawConn) sendBatch(id uint64, acts []logs.Action) {
	rc.t.Helper()
	e := wire.NewEncoder()
	e.IngestBatch(id, acts)
	if err := rc.enc.Envelope(e.Bytes()); err != nil {
		rc.t.Fatal(err)
	}
}

func (rc *rawConn) flush() {
	rc.t.Helper()
	if err := rc.enc.Flush(); err != nil {
		rc.t.Fatal(err)
	}
}

func (rc *rawConn) readMsg() (wire.IngestMsg, error) {
	rc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	env, err := rc.dec.Envelope()
	if err != nil {
		return wire.IngestMsg{}, err
	}
	return wire.DecodeIngest(env)
}

func act(p string, i int) logs.Action {
	return logs.SndAct(p, logs.NameT(fmt.Sprintf("m%d", i)), logs.NameT("v"))
}

func acts(p string, base, n int) []logs.Action {
	out := make([]logs.Action, n)
	for i := range out {
		out[i] = act(p, base+i)
	}
	return out
}

// TestIngestSingleBatch: one request, one ack carrying the assigned
// contiguous block, records visible in the store in batch order.
func TestIngestSingleBatch(t *testing.T) {
	_, st, addr := newTestServer(t, Options{})
	rc := dialRaw(t, addr)
	batch := acts("alice", 0, 5)
	rc.sendBatch(7, batch)
	rc.flush()
	m, err := rc.readMsg()
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != wire.OpIngestAck || m.ID != 7 || m.Count != 5 {
		t.Fatalf("ack: %+v", m)
	}
	recs := st.Records("alice")
	if len(recs) != 5 {
		t.Fatalf("store has %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Seq != m.Base+uint64(i) || r.Act != batch[i] {
			t.Fatalf("record %d: %+v (ack base %d)", i, r, m.Base)
		}
	}
}

// TestIngestPipelined: many requests in flight before any ack is read.
// Every request is acked with a block of its exact size, blocks do not
// overlap, and same-connection requests land in send order.
func TestIngestPipelined(t *testing.T) {
	_, st, addr := newTestServer(t, Options{})
	rc := dialRaw(t, addr)
	const nReq, perReq = 40, 8
	for id := 0; id < nReq; id++ {
		rc.sendBatch(uint64(id), acts("p", id*perReq, perReq))
	}
	rc.flush()
	var lastBase uint64
	for i := 0; i < nReq; i++ {
		m, err := rc.readMsg()
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if m.Op != wire.OpIngestAck || m.ID != uint64(i) || m.Count != perReq {
			t.Fatalf("ack %d: %+v", i, m)
		}
		if i > 0 && m.Base < lastBase+perReq {
			t.Fatalf("ack %d: block %d overlaps previous base %d", i, m.Base, lastBase)
		}
		lastBase = m.Base
	}
	recs := st.Records("p")
	if len(recs) != nReq*perReq {
		t.Fatalf("store has %d records, want %d", len(recs), nReq*perReq)
	}
	for i, r := range recs {
		if want := act("p", i); r.Act != want {
			t.Fatalf("record %d out of order: got %v want %v", i, r.Act, want)
		}
	}
}

// TestIngestValidationError: a bad request is rejected alone — its
// round-mates commit and ack, and the connection stays usable.
func TestIngestValidationError(t *testing.T) {
	_, st, addr := newTestServer(t, Options{})
	rc := dialRaw(t, addr)
	rc.sendBatch(1, acts("good", 0, 3))
	rc.sendBatch(2, []logs.Action{{Principal: "", Kind: logs.Snd, A: logs.NameT("m"), B: logs.NameT("v")}})
	rc.sendBatch(3, acts("good", 3, 3))
	rc.flush()
	got := map[uint64]wire.IngestMsg{}
	for i := 0; i < 3; i++ {
		m, err := rc.readMsg()
		if err != nil {
			t.Fatal(err)
		}
		got[m.ID] = m
	}
	if got[1].Op != wire.OpIngestAck || got[3].Op != wire.OpIngestAck {
		t.Fatalf("good requests not acked: %+v", got)
	}
	if got[2].Op != wire.OpIngestError || !strings.Contains(got[2].Msg, "empty principal") {
		t.Fatalf("bad request reply: %+v", got[2])
	}
	if n := len(st.Records("good")); n != 6 {
		t.Fatalf("store has %d good records, want 6", n)
	}
	// The connection survives a rejected request.
	rc.sendBatch(4, acts("good", 6, 1))
	rc.flush()
	if m, err := rc.readMsg(); err != nil || m.Op != wire.OpIngestAck || m.ID != 4 {
		t.Fatalf("post-error request: %+v %v", m, err)
	}
}

// TestIngestMalformedFrame: garbage on the wire draws an id-0 error and
// a close, without disturbing other connections.
func TestIngestMalformedFrame(t *testing.T) {
	_, st, addr := newTestServer(t, Options{})
	bad := dialRaw(t, addr)
	good := dialRaw(t, addr)

	if _, err := bad.c.Write([]byte{0x04, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	m, err := bad.readMsg()
	if err != nil {
		t.Fatalf("expected id-0 error reply, got %v", err)
	}
	if m.Op != wire.OpIngestError || m.ID != 0 {
		t.Fatalf("got %+v", m)
	}
	if _, err := bad.readMsg(); err == nil {
		t.Fatal("connection should be closed after frame damage")
	}

	good.sendBatch(1, acts("p", 0, 2))
	good.flush()
	if m, err := good.readMsg(); err != nil || m.Op != wire.OpIngestAck {
		t.Fatalf("good connection disturbed: %+v %v", m, err)
	}
	if n := len(st.Records("p")); n != 2 {
		t.Fatalf("store has %d records, want 2", n)
	}
}

// TestIngestDrain: requests fully written before Close are committed
// and acked during the drain, and the connection then closes cleanly.
func TestIngestDrain(t *testing.T) {
	srv, st, addr := newTestServer(t, Options{})
	rc := dialRaw(t, addr)
	const nReq = 10
	for id := 0; id < nReq; id++ {
		rc.sendBatch(uint64(id), acts("p", id*2, 2))
	}
	rc.flush()
	// Give the reader a moment to pull the frames off the socket, then
	// drain. (Frames still in the kernel buffer at drain time may drop —
	// that is the documented contract — so wait for them to be read.)
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Requests < nReq {
		if time.Now().After(deadline) {
			t.Fatalf("server read %d/%d requests", srv.Stats().Requests, nReq)
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	acked := 0
	for {
		m, err := rc.readMsg()
		if err != nil {
			break // server closed after flushing its acks
		}
		if m.Op == wire.OpIngestError && m.ID == 0 {
			// A connection-scoped error during drain would make a real
			// client fail its in-flight requests — the drain kick must
			// end the reader silently.
			t.Fatalf("drain sent a connection-scoped error: %q", m.Msg)
		}
		if m.Op == wire.OpIngestAck {
			acked++
		}
	}
	if acked != nReq {
		t.Fatalf("drained %d acks, want %d", acked, nReq)
	}
	if n := len(st.Records("p")); n != nReq*2 {
		t.Fatalf("store has %d records, want %d", n, nReq*2)
	}
}

// TestIngestStats: the counters add up after a mixed workload.
func TestIngestStats(t *testing.T) {
	srv, _, addr := newTestServer(t, Options{})
	rc := dialRaw(t, addr)
	rc.sendBatch(1, acts("p", 0, 4))
	rc.sendBatch(2, []logs.Action{{Principal: "", Kind: logs.Snd, A: logs.NameT("m"), B: logs.NameT("v")}})
	rc.flush()
	for i := 0; i < 2; i++ {
		if _, err := rc.readMsg(); err != nil {
			t.Fatal(err)
		}
	}
	s := srv.Stats()
	if s.Accepted != 1 || s.Requests != 2 || s.Records != 4 || s.Rejects != 1 {
		t.Fatalf("stats: %+v", s)
	}
}
