package ingest

// The snapshot transfer path: bulk replica bootstrap served on the same
// listener as ingest and queries (wire/snapshot.go has the frame spec,
// docs/protocol.md the protocol contract). An OpSnapshot pins the
// store's sequence high-water as the snapshot ceiling and streams the
// committed prefix below it — meta, record chunks in ascending sequence
// order via the store's global merge (ScanGlobal), the session-table
// entries that prefix fully backs, then one end frame repeating the
// ceiling as the follow resume cursor. Appends racing the snapshot land
// above the ceiling and are invisible to it; the follow the replica
// starts from the resume cursor picks them up, so snapshot + delta is
// exactly the leader's log.
//
// Snapshots share the query id space and cancel op on a connection:
// OpQueryCancel with a snapshot's id stops it mid-stream with an
// end-frame error, as does a server drain. A partial snapshot is
// explicitly marked failed — the replica keeps the applied prefix
// (every chunk is durable on arrival) and retries; re-bootstrap after a
// partial apply resumes by following, not by re-fetching.

import (
	"fmt"

	"repro/internal/auth"
	"repro/internal/wire"
)

// sendSnapshot writes and flushes one snapshot frame built by the
// caller, reporting write success.
func (rw *replyWriter) sendSnapshot(build func(*wire.Encoder)) bool {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if !rw.write(build) {
		return false
	}
	return rw.enc.Flush() == nil
}

// handleSnapshotMsg dispatches one snapshot-family message from the
// reader, reporting whether the connection is still trustworthy. A
// snapshot ships the whole unredacted log, so a grant must hold the
// replica role — read alone is not enough.
func (s *Server) handleSnapshotMsg(cq *connQueries, replies *replyWriter, env []byte, grant *auth.Grant) bool {
	m, err := wire.DecodeSnapshot(env)
	if err != nil {
		replies.sendError(0, fmt.Sprintf("closing: bad snapshot message: %v", err))
		s.connFails.Add(1)
		return false
	}
	if m.Op != wire.OpSnapshot {
		// Meta, chunks, sessions and ends only flow server → client.
		replies.sendError(0, fmt.Sprintf("closing: unexpected snapshot opcode %#x from client", m.Op))
		s.connFails.Add(1)
		return false
	}
	if m.ID == 0 {
		replies.sendError(0, "closing: snapshot id 0 is reserved")
		s.connFails.Add(1)
		return false
	}
	if grant != nil && !grant.CanReplicate() {
		s.queryRejects.Add(1)
		s.opts.Auth.SnapshotRejects.Add(1)
		replies.sendSnapshot(func(e *wire.Encoder) {
			e.SnapshotEnd(m.ID, 0, fmt.Sprintf("identity %q lacks the replica role", grant.Name))
		})
		return true
	}
	cancel, err := cq.register(m.ID, s.opts.MaxQueriesPerConn)
	if err != nil {
		s.queryRejects.Add(1)
		replies.sendSnapshot(func(e *wire.Encoder) { e.SnapshotEnd(m.ID, 0, err.Error()) })
		return true
	}
	s.snapshots.Add(1)
	cq.wg.Add(1)
	go func(id uint64) {
		defer cq.wg.Done()
		defer cq.unregister(id)
		s.runSnapshot(cq, replies, id, cancel)
	}(m.ID)
	return true
}

// snapshotStopped reports whether the snapshot should end early
// (client cancel, reader gone, or server drain).
func snapshotStopped(cq *connQueries, s *Server, cancel chan struct{}) bool {
	select {
	case <-cancel:
		return true
	case <-cq.done:
		return true
	case <-s.done:
		return true
	default:
		return false
	}
}

// runSnapshot streams one snapshot transfer: pin the ceiling, page the
// global log below it, then the backed session entries, then the end.
func (s *Server) runSnapshot(cq *connQueries, replies *replyWriter, id uint64, cancel chan struct{}) {
	ceil := s.store.Counts().NextSeq
	// Only entries whose whole claimed block lies under the ceiling are
	// shipped: the snapshot's record prefix must back every entry it
	// installs, or replica recovery would (rightly) drop them.
	var entries []wire.SessionEntry
	for _, se := range s.store.Sessions().Entries() {
		if se.Base+se.Count <= ceil {
			entries = append(entries, se)
		}
	}
	// Sizing hint only; racing appends make the record count approximate.
	total := min(uint64(s.store.Counts().Records), ceil)
	if !replies.sendSnapshot(func(e *wire.Encoder) { e.SnapshotMeta(id, ceil, total, uint64(len(entries))) }) {
		return
	}
	from := uint64(0)
	for {
		if snapshotStopped(cq, s, cancel) {
			replies.sendSnapshot(func(e *wire.Encoder) { e.SnapshotEnd(id, ceil, "snapshot cancelled") })
			return
		}
		recs := s.store.ScanGlobal(from, ceil, maxChunkRecs)
		if len(recs) == 0 {
			break
		}
		from = recs[len(recs)-1].Seq + 1
		// Split by count and encoded size, like the query path, so no
		// frame outgrows the stream codec's bound.
		for len(recs) > 0 {
			n, bytes := 0, 0
			for n < len(recs) && n < wire.MaxSnapshotChunk {
				sz := estSize(recs[n])
				if n > 0 && bytes+sz > chunkBytes {
					break
				}
				bytes += sz
				n++
			}
			if !replies.sendSnapshot(func(e *wire.Encoder) { e.SnapshotChunk(id, recs[:n]) }) {
				return
			}
			s.snapshotRecords.Add(uint64(n))
			recs = recs[n:]
		}
	}
	for off := 0; off < len(entries); off += wire.MaxSnapshotSessions {
		if snapshotStopped(cq, s, cancel) {
			replies.sendSnapshot(func(e *wire.Encoder) { e.SnapshotEnd(id, ceil, "snapshot cancelled") })
			return
		}
		end := min(off+wire.MaxSnapshotSessions, len(entries))
		if !replies.sendSnapshot(func(e *wire.Encoder) { e.SnapshotSessions(id, entries[off:end]) }) {
			return
		}
	}
	replies.sendSnapshot(func(e *wire.Encoder) { e.SnapshotEnd(id, ceil, "") })
}
