// Package denote implements the denotation of provenance (Definition 2 of
// the paper): the function ⟦−⟧ mapping an annotated value V:κ to a log
// representing the assertions κ makes about the past of V,
//
//	⟦V : ε⟧     = ∅
//	⟦V : a!κ';κ⟧ = a.snd(x, V); (⟦V:κ⟧ | ⟦x:κ'⟧)
//	⟦V : a?κ';κ⟧ = a.rcv(x, V); (⟦V:κ⟧ | ⟦x:κ'⟧)
//
// where x is a fresh variable standing for the unknown channel used in the
// event. The resulting log is a partial record: it lacks channel
// identities and imposes no order between the events of κ and those of the
// channel provenances κ'.
package denote

import (
	"strconv"

	"repro/internal/logs"
	"repro/internal/syntax"
)

// fresher coins deterministic fresh channel variables ch0, ch1, ... in the
// preorder of the denotation, so that denoting the same annotated value
// twice produces literally identical logs (alpha-equality for free).
type fresher struct{ n int }

func (f *fresher) next() string {
	name := "ch" + strconv.Itoa(f.n)
	f.n++
	return name
}

// Denote computes ⟦V:κ⟧ for an annotated value.
func Denote(v syntax.AnnotatedValue) logs.Log {
	f := &fresher{}
	return denote(logs.NameT(v.V.Name), v.K, f)
}

// DenoteTerm computes ⟦V:κ⟧ where V is an arbitrary element of Dx
// (a plain value, a variable, or the unknown-channel symbol ?). This is
// the form needed by the correctness checker, whose values(−) function
// substitutes ? for restricted channel names.
func DenoteTerm(v logs.Term, k syntax.Prov) logs.Log {
	f := &fresher{}
	return denote(v, k, f)
}

func denote(v logs.Term, k syntax.Prov, f *fresher) logs.Log {
	if len(k) == 0 {
		return logs.Nil() // ⟦V : ε⟧ = ∅
	}
	e := k.Head()
	x := logs.VarT(f.next())
	var act logs.Action
	if e.Dir == syntax.Send {
		act = logs.SndAct(e.Principal, x, v)
	} else {
		act = logs.RcvAct(e.Principal, x, v)
	}
	// The event's own past: the rest of κ concerns V, while the channel
	// provenance κ' concerns the unknown channel x; their relative order
	// is not recorded, hence the composition.
	rest := denote(v, k.Tail(), f)
	chanPast := denote(x, e.ChanProv, f)
	return logs.Prefix(act, logs.Compose(rest, chanPast))
}
