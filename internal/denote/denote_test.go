package denote

import (
	"testing"

	"repro/internal/logs"
	"repro/internal/syntax"
)

func TestDenoteEmpty(t *testing.T) {
	// ⟦V : ε⟧ = ∅: a value that originated here asserts nothing.
	got := Denote(syntax.Fresh(syntax.Chan("v")))
	if !logs.Equal(got, logs.Nil()) {
		t.Errorf("⟦v:ε⟧ = %s, want ∅", got)
	}
}

func TestDenoteSingleSend(t *testing.T) {
	// ⟦v : a!ε⟧ = a.snd(x, v); (∅|∅) = a.snd(x, v).
	v := syntax.Annot(syntax.Chan("v"), syntax.Seq(syntax.OutEvent("a", nil)))
	got := Denote(v)
	want := logs.Prefix(logs.SndAct("a", logs.VarT("ch0"), logs.NameT("v")), logs.Nil())
	if !logs.Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestDenoteSingleRecv(t *testing.T) {
	v := syntax.Annot(syntax.Chan("v"), syntax.Seq(syntax.InEvent("b", nil)))
	got := Denote(v)
	want := logs.Prefix(logs.RcvAct("b", logs.VarT("ch0"), logs.NameT("v")), logs.Nil())
	if !logs.Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestDenoteSequence(t *testing.T) {
	// ⟦v : b?ε; a!ε⟧ = b.rcv(x, v); a.snd(y, v).
	v := syntax.Annot(syntax.Chan("v"), syntax.Seq(
		syntax.InEvent("b", nil),
		syntax.OutEvent("a", nil),
	))
	got := Denote(v)
	acts := logs.Actions(got)
	if len(acts) != 2 {
		t.Fatalf("actions = %d, want 2", len(acts))
	}
	if acts[0].Kind != logs.Rcv || acts[0].Principal != "b" {
		t.Errorf("most recent action = %v, want b.rcv", acts[0])
	}
	if acts[1].Kind != logs.Snd || acts[1].Principal != "a" {
		t.Errorf("older action = %v, want a.snd", acts[1])
	}
	// The two channel variables must be distinct.
	if acts[0].A == acts[1].A {
		t.Errorf("channel variables must be fresh per event: %v vs %v", acts[0].A, acts[1].A)
	}
}

func TestDenoteChannelProvenanceBranch(t *testing.T) {
	// ⟦v : a!(c?ε)⟧ = a.snd(x, v); (∅ | c.rcv(y, x)): the channel's own
	// past concerns x, composed (unordered) with the value's older past.
	km := syntax.Seq(syntax.InEvent("c", nil))
	v := syntax.Annot(syntax.Chan("v"), syntax.Seq(syntax.OutEvent("a", km)))
	got := Denote(v)
	pre, ok := got.(*logs.Pre)
	if !ok {
		t.Fatalf("expected prefix, got %T", got)
	}
	if pre.Act.Kind != logs.Snd || pre.Act.Principal != "a" {
		t.Errorf("head action = %v", pre.Act)
	}
	x := pre.Act.A
	if !x.IsVar() {
		t.Fatalf("channel position should be a variable, got %v", x)
	}
	inner := logs.Actions(pre.Rest)
	if len(inner) != 1 {
		t.Fatalf("inner actions = %d, want 1", len(inner))
	}
	if inner[0].Kind != logs.Rcv || inner[0].Principal != "c" {
		t.Errorf("inner action = %v, want c.rcv", inner[0])
	}
	// The channel-past action's value is the bound channel variable x.
	if inner[0].B != x {
		t.Errorf("channel past should be about %v, got %v", x, inner[0].B)
	}
	// The whole denotation is closed: x is bound by the snd action.
	if !logs.IsClosed(got) {
		t.Errorf("denotation should be closed, free vars: %v", logs.FreeVars(got))
	}
}

func TestDenoteDeterministic(t *testing.T) {
	v := syntax.Annot(syntax.Chan("v"), syntax.Seq(
		syntax.InEvent("c", syntax.Seq(syntax.OutEvent("o", nil))),
		syntax.OutEvent("s", nil),
		syntax.InEvent("s", nil),
		syntax.OutEvent("a", nil),
	))
	if logs.Canon(Denote(v)) != logs.Canon(Denote(v)) {
		t.Errorf("denotation must be deterministic")
	}
}

func TestDenoteTermUnknown(t *testing.T) {
	// ⟦? : a!ε⟧: assertions about a private channel unknown to the log.
	got := DenoteTerm(logs.UnknownT(), syntax.Seq(syntax.OutEvent("a", nil)))
	acts := logs.Actions(got)
	if len(acts) != 1 || acts[0].B.Kind != logs.TUnknown {
		t.Errorf("got %s", got)
	}
}

func TestDenoteSizeLinear(t *testing.T) {
	// One log action per event, including nested channel provenances.
	k := syntax.Seq(
		syntax.InEvent("c", syntax.Seq(syntax.OutEvent("o", syntax.Seq(syntax.InEvent("q", nil))))),
		syntax.OutEvent("a", nil),
	)
	got := Denote(syntax.Annot(syntax.Chan("v"), k))
	if n := logs.Size(got); n != k.Size() {
		t.Errorf("log size = %d, want %d (one action per event)", n, k.Size())
	}
}

func TestDenoteAuditProvenance(t *testing.T) {
	// The auditing example's final provenance c?ε;s!ε;s?ε;a!ε denotes a
	// chain of four actions in recency order c.rcv, s.snd, s.rcv, a.snd.
	k := syntax.Seq(
		syntax.InEvent("c", nil),
		syntax.OutEvent("s", nil),
		syntax.InEvent("s", nil),
		syntax.OutEvent("a", nil),
	)
	got := Denote(syntax.Annot(syntax.Chan("v"), k))
	acts := logs.Actions(got)
	wantKinds := []logs.ActKind{logs.Rcv, logs.Snd, logs.Rcv, logs.Snd}
	wantPrincipals := []string{"c", "s", "s", "a"}
	if len(acts) != 4 {
		t.Fatalf("actions = %d, want 4", len(acts))
	}
	for i := range acts {
		if acts[i].Kind != wantKinds[i] || acts[i].Principal != wantPrincipals[i] {
			t.Errorf("action %d = %v", i, acts[i])
		}
	}
}
