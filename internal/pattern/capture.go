package pattern

import "repro/internal/syntax"

// Capture is the binding-pattern extension the paper lists first among its
// planned extensions (§5): "principals cannot use dynamic information for
// their provenance tests nor can they extract part (or all) of the
// provenance sequence and use it as data. This is one of the first
// extensions we aim to make to the calculus."
//
// capture(y, π) matches exactly when π matches a non-empty provenance, and
// additionally binds y — in the receiving continuation — to the principal
// of the most recent event: the identity of the agent that last handled
// the value. The binding is performed by the reduction semantics (rule
// R-Recv consults CaptureBindings); the captured identity enters the
// continuation as a principal value with ε provenance, which is trivially
// correct under Definition 3 (⟦p:ε⟧ = ∅ ≼ every log).
//
// The classic use is reply-to: a server captures who last forwarded a
// request and routes the response accordingly, without trusting any
// payload-level sender field (which rule R-Send would expose as forgeable).
type Capture struct {
	// Var is the variable bound to the most recent handler's principal.
	Var string
	// P is the pattern the provenance must satisfy.
	P Pattern
}

func (Capture) isPattern() {}

// Matches requires a non-empty provenance satisfying the inner pattern
// (an empty provenance has no most-recent handler to capture).
func (c Capture) Matches(k syntax.Prov) bool {
	return len(k) > 0 && c.P.Matches(k)
}

func (c Capture) String() string {
	return "capture(" + c.Var + ", " + c.P.String() + ")"
}

// CaptureVars returns the variables bound by top-level captures of a
// pattern (captures are only interpreted at the top level of an input
// position; nesting one under concatenation or repetition is a static
// error the parser rejects).
func CaptureVars(p syntax.Pattern) []string {
	if c, ok := p.(Capture); ok {
		return append(CaptureVars(c.P), c.Var)
	}
	return nil
}

// Bindings implements syntax.CapturingPattern: the capture variable (and
// those of directly nested captures) maps to the principal of κ's most
// recent event, annotated ε.
func (c Capture) Bindings(k syntax.Prov) map[string]syntax.AnnotatedValue {
	sigma := make(map[string]syntax.AnnotatedValue, 1)
	var walk func(p Pattern)
	walk = func(p Pattern) {
		cc, ok := p.(Capture)
		if !ok {
			return
		}
		if len(k) > 0 {
			sigma[cc.Var] = syntax.Fresh(syntax.Principal(k.Head().Principal))
		}
		walk(cc.P)
	}
	walk(c)
	return sigma
}

// BoundVars implements syntax.CapturingPattern.
func (c Capture) BoundVars() []string { return CaptureVars(c) }

// ContainsNestedCapture reports whether a Capture node occurs anywhere
// below the top-level capture chain — a static error, since bindings are
// only interpreted at the top level of an input position.
func ContainsNestedCapture(p Pattern) bool {
	// Skip the legal top-level chain.
	for {
		c, ok := p.(Capture)
		if !ok {
			break
		}
		p = c.P
	}
	return hasCapture(p)
}

func hasCapture(p Pattern) bool {
	switch p := p.(type) {
	case Capture:
		return true
	case Cat:
		return hasCapture(p.L) || hasCapture(p.R)
	case Alt:
		return hasCapture(p.L) || hasCapture(p.R)
	case Star:
		return hasCapture(p.P)
	case EventPat:
		return hasCapture(p.Arg)
	default:
		return false
	}
}
