package pattern

import (
	"fmt"

	"repro/internal/syntax"
)

// Matcher is a compiled pattern. Compilation assigns integer identities to
// the pattern's nodes so that matching can memoise sub-results on
// (node, start, end) triples; without memoisation the concatenation and
// repetition rules (S-Cat, S-Rep) enumerate split points and backtracking
// is exponential in the worst case.
//
// A Matcher is safe for concurrent use: each Match call allocates its own
// memo table.
type Matcher struct {
	root  int
	nodes []Pattern
	kids  [][2]int // child node ids; -1 where absent
}

// Compile compiles a pattern into a reusable Matcher.
func Compile(p Pattern) *Matcher {
	m := &Matcher{}
	m.root = m.compile(p)
	return m
}

func (m *Matcher) compile(p Pattern) int {
	id := len(m.nodes)
	m.nodes = append(m.nodes, p)
	m.kids = append(m.kids, [2]int{-1, -1})
	switch p := p.(type) {
	case Cat:
		l := m.compile(p.L)
		r := m.compile(p.R)
		m.kids[id] = [2]int{l, r}
	case Alt:
		l := m.compile(p.L)
		r := m.compile(p.R)
		m.kids[id] = [2]int{l, r}
	case Star:
		c := m.compile(p.P)
		m.kids[id] = [2]int{c, -1}
	case Capture:
		c := m.compile(p.P)
		m.kids[id] = [2]int{c, -1}
	case Empty, Any, EventPat:
		// leaves
	default:
		panic(fmt.Sprintf("pattern: Compile: unknown pattern %T", p))
	}
	return id
}

type memoKey struct {
	node, lo, hi int
}

type matchState struct {
	m    *Matcher
	k    syntax.Prov
	memo map[memoKey]bool
}

// Match reports κ ⊨ π for the compiled pattern.
func (m *Matcher) Match(k syntax.Prov) bool {
	st := &matchState{m: m, k: k, memo: make(map[memoKey]bool)}
	return st.match(m.root, 0, len(k))
}

func (st *matchState) match(node, lo, hi int) bool {
	key := memoKey{node, lo, hi}
	if v, ok := st.memo[key]; ok {
		return v
	}
	// Seed false to cut cycles (Star over nullable bodies); the split-point
	// restriction below makes true recursion well-founded regardless.
	st.memo[key] = false
	v := st.eval(node, lo, hi)
	st.memo[key] = v
	return v
}

func (st *matchState) eval(node, lo, hi int) bool {
	switch p := st.m.nodes[node].(type) {
	case Empty:
		return lo == hi
	case Any:
		return true
	case EventPat:
		return hi == lo+1 && p.MatchesEvent(st.k[lo])
	case Cat:
		l, r := st.m.kids[node][0], st.m.kids[node][1]
		for mid := lo; mid <= hi; mid++ {
			if st.match(l, lo, mid) && st.match(r, mid, hi) {
				return true
			}
		}
		return false
	case Alt:
		return st.match(st.m.kids[node][0], lo, hi) || st.match(st.m.kids[node][1], lo, hi)
	case Capture:
		// The binding is interpreted by R-Recv; as a matcher, capture(y, π)
		// is π restricted to non-empty sequences.
		return hi > lo && st.match(st.m.kids[node][0], lo, hi)
	case Star:
		if lo == hi {
			return true // zero repetitions
		}
		c := st.m.kids[node][0]
		// Each repetition consumes at least one event: partitions with
		// empty parts are equivalent to ones without them.
		for mid := lo + 1; mid <= hi; mid++ {
			if st.match(c, lo, mid) && st.match(node, mid, hi) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("pattern: eval: unknown pattern %T", st.m.nodes[node]))
	}
}

// match is the uncompiled entry point used by the Matches methods of Cat
// and Star; it compiles on the fly.
func match(p Pattern, k syntax.Prov) bool { return Compile(p).Match(k) }

// MatchNaive is a direct transcription of the satisfaction rules of
// Table 3 with explicit enumeration of split points and no memoisation.
// It is exponential in the worst case and exists solely as a differential-
// testing oracle for the memoised matcher (ablation A1 in DESIGN.md).
func MatchNaive(p Pattern, k syntax.Prov) bool {
	switch p := p.(type) {
	case Empty:
		return len(k) == 0 // S-Empty
	case Any:
		return true // S-Any
	case EventPat:
		if len(k) != 1 {
			return false
		}
		e := k[0]
		// S-Send / S-Recv: a ∈ ⟦G⟧ and κ ⊨ π for the channel provenance.
		return e.Dir == p.Dir && p.G.Contains(e.Principal) && MatchNaive(p.Arg, e.ChanProv)
	case Cat:
		// S-Cat: some split κ = κ₁;κ₂ with κ₁ ⊨ π and κ₂ ⊨ π'.
		for mid := 0; mid <= len(k); mid++ {
			if MatchNaive(p.L, k[:mid]) && MatchNaive(p.R, k[mid:]) {
				return true
			}
		}
		return false
	case Alt:
		// S-AltL / S-AltR.
		return MatchNaive(p.L, k) || MatchNaive(p.R, k)
	case Capture:
		return len(k) > 0 && MatchNaive(p.P, k)
	case Star:
		// S-Rep: κ = κ₁;…;κₙ with every κᵢ ⊨ π (n = 0 allowed).
		if len(k) == 0 {
			return true
		}
		for mid := 1; mid <= len(k); mid++ {
			if MatchNaive(p.P, k[:mid]) && MatchNaive(p, k[mid:]) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("pattern: MatchNaive: unknown pattern %T", p))
	}
}

// Nullable reports whether π matches the empty sequence ε. It is decided
// syntactically, without running the matcher.
func Nullable(p Pattern) bool {
	switch p := p.(type) {
	case Empty, Any, Star:
		return true
	case EventPat:
		return false
	case Cat:
		return Nullable(p.L) && Nullable(p.R)
	case Alt:
		return Nullable(p.L) || Nullable(p.R)
	case Capture:
		return false // captures need a most-recent event
	default:
		panic(fmt.Sprintf("pattern: Nullable: unknown pattern %T", p))
	}
}
