// Package pattern implements the sample pattern-matching language of the
// provenance calculus (Table 3 of the paper):
//
//	π ::= ε | α | π;π | π∨π | π* | Any
//	α ::= G!π | G?π
//	G ::= a | ∼ | G+G | G−G
//
// Patterns match provenance sequences; the satisfaction relation κ ⊨ π is
// given by the rules S-Empty, S-Send, S-Recv, S-Cat, S-AltL/R, S-Rep and
// S-Any. Group expressions denote sets of principals via ⟦−⟧.
//
// The language is a regular-expression language over (recursive) events, so
// matching uses memoised backtracking over split points; a naive
// exponential reference matcher is kept for differential testing.
package pattern

import (
	"fmt"
	"strings"

	"repro/internal/syntax"
)

// Pattern is a pattern π of the sample language. It implements
// syntax.Pattern, the parametric pattern interface of the calculus.
type Pattern interface {
	syntax.Pattern
	isPattern()
}

// Group is a group expression G denoting a set of principals.
type Group interface {
	// Contains reports a ∈ ⟦G⟧ given the universe of principals is
	// irrelevant (membership is decidable pointwise for every G).
	Contains(principal string) bool
	String() string
}

// GName is the singleton group a with ⟦a⟧ = {a}.
type GName struct{ Name string }

// Contains reports whether the principal is exactly the named one.
func (g GName) Contains(p string) bool { return p == g.Name }

func (g GName) String() string { return g.Name }

// GAll is the universal group ∼ with ⟦∼⟧ = A (all principals).
type GAll struct{}

// Contains always reports true.
func (GAll) Contains(string) bool { return true }

func (GAll) String() string { return "~" }

// GUnion is the union group G+G' with ⟦G+G'⟧ = ⟦G⟧ ∪ ⟦G'⟧.
type GUnion struct{ L, R Group }

// Contains reports membership in either operand.
func (g GUnion) Contains(p string) bool { return g.L.Contains(p) || g.R.Contains(p) }

func (g GUnion) String() string { return "(" + g.L.String() + "+" + g.R.String() + ")" }

// GDiff is the difference group G−G' with ⟦G−G'⟧ = ⟦G⟧ \ ⟦G'⟧.
type GDiff struct{ L, R Group }

// Contains reports membership in L but not R.
func (g GDiff) Contains(p string) bool { return g.L.Contains(p) && !g.R.Contains(p) }

func (g GDiff) String() string { return "(" + g.L.String() + "-" + g.R.String() + ")" }

// Name returns the singleton group for a principal name.
func Name(a string) Group { return GName{Name: a} }

// All returns the universal group ∼.
func All() Group { return GAll{} }

// Union returns G+G'.
func Union(l, r Group) Group { return GUnion{L: l, R: r} }

// Diff returns G−G'.
func Diff(l, r Group) Group { return GDiff{L: l, R: r} }

// Empty is the pattern ε matching only the empty provenance sequence.
type Empty struct{}

func (Empty) isPattern() {}

// Matches implements rule S-Empty.
func (Empty) Matches(k syntax.Prov) bool { return len(k) == 0 }

func (Empty) String() string { return "eps" }

// EventPat is the event pattern α = G!π or G?π: it matches a provenance
// sequence consisting of exactly one event whose principal is in ⟦G⟧,
// whose direction matches, and whose channel provenance satisfies the
// argument pattern (rules S-Send and S-Recv).
type EventPat struct {
	G   Group
	Dir syntax.Dir
	Arg Pattern
}

func (EventPat) isPattern() {}

// MatchesEvent reports whether a single event satisfies the event pattern.
func (p EventPat) MatchesEvent(e syntax.Event) bool {
	return e.Dir == p.Dir && p.G.Contains(e.Principal) && p.Arg.Matches(e.ChanProv)
}

// Matches implements rules S-Send and S-Recv: the sequence must be the
// single event e with e ⊨ α.
func (p EventPat) Matches(k syntax.Prov) bool {
	return len(k) == 1 && p.MatchesEvent(k[0])
}

func (p EventPat) String() string {
	arg := p.Arg.String()
	switch p.Arg.(type) {
	case Empty, Any:
		// atoms need no parentheses
	default:
		arg = "(" + arg + ")"
	}
	return p.G.String() + p.Dir.String() + arg
}

// Cat is the concatenation pattern π;π′ matching a sequence splittable into
// a prefix matching π and a suffix matching π′ (rule S-Cat).
type Cat struct{ L, R Pattern }

func (Cat) isPattern() {}

// Matches implements rule S-Cat via the package matcher.
func (p Cat) Matches(k syntax.Prov) bool { return match(p, k) }

func (p Cat) String() string {
	return catOperand(p.L) + ";" + catOperand(p.R)
}

func catOperand(p Pattern) string {
	if _, ok := p.(Alt); ok {
		return "(" + p.String() + ")"
	}
	return p.String()
}

// Alt is the alternation pattern π∨π′ (rules S-AltL, S-AltR).
type Alt struct{ L, R Pattern }

func (Alt) isPattern() {}

// Matches implements rules S-AltL and S-AltR.
func (p Alt) Matches(k syntax.Prov) bool { return p.L.Matches(k) || p.R.Matches(k) }

func (p Alt) String() string { return p.L.String() + " / " + p.R.String() }

// Star is the repetition pattern π* matching any sequence that splits into
// zero or more parts each matching π (rule S-Rep).
type Star struct{ P Pattern }

func (Star) isPattern() {}

// Matches implements rule S-Rep via the package matcher.
func (p Star) Matches(k syntax.Prov) bool { return match(p, k) }

func (p Star) String() string {
	switch p.P.(type) {
	case Empty, Any, EventPat:
		return p.P.String() + "*"
	default:
		return "(" + p.P.String() + ")*"
	}
}

// Any is the pattern Any matching every provenance sequence (rule S-Any).
type Any struct{}

func (Any) isPattern() {}

// Matches always reports true.
func (Any) Matches(syntax.Prov) bool { return true }

func (Any) String() string { return "any" }

// Convenience constructors.

// Eps returns the ε pattern.
func Eps() Pattern { return Empty{} }

// AnyP returns the Any pattern.
func AnyP() Pattern { return Any{} }

// Out returns the event pattern G!π.
func Out(g Group, arg Pattern) Pattern { return EventPat{G: g, Dir: syntax.Send, Arg: arg} }

// In returns the event pattern G?π.
func In(g Group, arg Pattern) Pattern { return EventPat{G: g, Dir: syntax.Recv, Arg: arg} }

// SeqP folds patterns into right-nested concatenations; SeqP() is ε.
func SeqP(ps ...Pattern) Pattern {
	switch len(ps) {
	case 0:
		return Empty{}
	case 1:
		return ps[0]
	}
	out := ps[len(ps)-1]
	for i := len(ps) - 2; i >= 0; i-- {
		out = Cat{L: ps[i], R: out}
	}
	return out
}

// AltP folds patterns into right-nested alternations. It panics on an empty
// argument list (the language has no empty alternation).
func AltP(ps ...Pattern) Pattern {
	if len(ps) == 0 {
		panic("pattern: AltP of no patterns")
	}
	out := ps[len(ps)-1]
	for i := len(ps) - 2; i >= 0; i-- {
		out = Alt{L: ps[i], R: out}
	}
	return out
}

// StarP returns π*.
func StarP(p Pattern) Pattern { return Star{P: p} }

// Size returns the number of AST nodes in a pattern, counting group
// expressions as one node each.
func Size(p Pattern) int {
	switch p := p.(type) {
	case Empty, Any:
		return 1
	case EventPat:
		return 2 + Size(p.Arg)
	case Cat:
		return 1 + Size(p.L) + Size(p.R)
	case Alt:
		return 1 + Size(p.L) + Size(p.R)
	case Star:
		return 1 + Size(p.P)
	case Capture:
		return 1 + Size(p.P)
	default:
		panic(fmt.Sprintf("pattern: Size: unknown pattern %T", p))
	}
}

// Equal reports structural pattern equality, comparing groups by their
// canonical rendering.
func Equal(p, q Pattern) bool { return p.String() == q.String() }

// Describe renders a pattern with the paper's unicode notation, for
// human-facing diagnostics.
func Describe(p Pattern) string {
	s := p.String()
	s = strings.ReplaceAll(s, " / ", " ∨ ")
	s = strings.ReplaceAll(s, "eps", "ε")
	s = strings.ReplaceAll(s, "any", "Any")
	s = strings.ReplaceAll(s, "~", "∼")
	return s
}
