package pattern

import (
	"testing"

	"repro/internal/syntax"
)

// prov builds a provenance sequence from shorthand strings like "a!", "b?";
// nested channel provenance is empty.
func prov(events ...string) syntax.Prov {
	var k syntax.Prov
	for _, s := range events {
		name := s[:len(s)-1]
		switch s[len(s)-1] {
		case '!':
			k = append(k, syntax.OutEvent(name, nil))
		case '?':
			k = append(k, syntax.InEvent(name, nil))
		default:
			panic("bad event shorthand " + s)
		}
	}
	return k
}

func TestGroupDenotation(t *testing.T) {
	cases := []struct {
		g    Group
		p    string
		want bool
	}{
		{Name("a"), "a", true}, // ⟦a⟧ = {a}
		{Name("a"), "b", false},
		{All(), "anything", true}, // ⟦∼⟧ = A
		{Union(Name("a"), Name("b")), "a", true},
		{Union(Name("a"), Name("b")), "b", true},
		{Union(Name("a"), Name("b")), "c", false},
		{Diff(All(), Name("a")), "a", false}, // ∼ − a
		{Diff(All(), Name("a")), "b", true},
		{Diff(Name("a"), Name("a")), "a", false},
		{Union(Diff(All(), Name("a")), Name("a")), "a", true},
	}
	for _, c := range cases {
		if got := c.g.Contains(c.p); got != c.want {
			t.Errorf("%s ∋ %s = %v, want %v", c.g, c.p, got, c.want)
		}
	}
}

func TestEmptyPattern(t *testing.T) {
	if !Eps().Matches(nil) {
		t.Errorf("ε should match ε")
	}
	if Eps().Matches(prov("a!")) {
		t.Errorf("ε should not match a!")
	}
}

func TestAnyPattern(t *testing.T) {
	for _, k := range []syntax.Prov{nil, prov("a!"), prov("a!", "b?", "c!")} {
		if !AnyP().Matches(k) {
			t.Errorf("Any should match %v", k)
		}
	}
}

func TestEventPattern(t *testing.T) {
	p := Out(Name("a"), AnyP()) // a!Any
	if !p.Matches(prov("a!")) {
		t.Errorf("a!Any should match a!()")
	}
	if p.Matches(prov("b!")) {
		t.Errorf("a!Any should not match b!()")
	}
	if p.Matches(prov("a?")) {
		t.Errorf("a!Any should not match a?() (wrong direction)")
	}
	if p.Matches(prov("a!", "a!")) {
		t.Errorf("a!Any matches single events only")
	}
	if p.Matches(nil) {
		t.Errorf("a!Any should not match ε")
	}
}

func TestEventPatternNestedChannelProv(t *testing.T) {
	// a!(b?Any) requires the channel provenance to be a single b? event.
	p := Out(Name("a"), In(Name("b"), AnyP()))
	kYes := syntax.Seq(syntax.OutEvent("a", syntax.Seq(syntax.InEvent("b", nil))))
	kNo := syntax.Seq(syntax.OutEvent("a", nil))
	if !p.Matches(kYes) {
		t.Errorf("should match nested provenance")
	}
	if p.Matches(kNo) {
		t.Errorf("should not match empty channel provenance")
	}
}

func TestCatPattern(t *testing.T) {
	// a!Any ; Any — paper's "sent directly by a" pattern shape.
	p := SeqP(Out(Name("a"), AnyP()), AnyP())
	if !p.Matches(prov("a!")) {
		t.Errorf("should match a! alone (Any matches ε)")
	}
	if !p.Matches(prov("a!", "b?", "c!")) {
		t.Errorf("should match a! followed by anything")
	}
	if p.Matches(prov("b?", "a!")) {
		t.Errorf("head must be a!")
	}
	if p.Matches(nil) {
		t.Errorf("needs at least the a! event")
	}
}

func TestCatOriginPattern(t *testing.T) {
	// Any ; d!Any — paper's "originated at d" pattern (§2.3.2 authentication).
	p := SeqP(AnyP(), Out(Name("d"), AnyP()))
	if !p.Matches(prov("d!")) {
		t.Errorf("should match d! alone")
	}
	if !p.Matches(prov("x?", "y!", "d!")) {
		t.Errorf("should match anything ending in d!")
	}
	if p.Matches(prov("d!", "x?")) {
		t.Errorf("d! must be the oldest event")
	}
}

func TestAltPattern(t *testing.T) {
	p := AltP(Out(Name("a"), AnyP()), In(Name("b"), AnyP()))
	if !p.Matches(prov("a!")) || !p.Matches(prov("b?")) {
		t.Errorf("alternation should match either side")
	}
	if p.Matches(prov("c!")) {
		t.Errorf("alternation should reject non-members")
	}
}

func TestStarPattern(t *testing.T) {
	p := StarP(Out(All(), AnyP())) // (∼!Any)*: any number of output events
	if !p.Matches(nil) {
		t.Errorf("star matches ε")
	}
	if !p.Matches(prov("a!", "b!", "c!")) {
		t.Errorf("star should match repeated outputs")
	}
	if p.Matches(prov("a!", "b?")) {
		t.Errorf("star of outputs should reject an input event")
	}
}

func TestStarOfNullable(t *testing.T) {
	// (Any)* is pathological for naive matchers: Any is nullable.
	p := StarP(AnyP())
	for _, k := range []syntax.Prov{nil, prov("a!"), prov("a!", "b?", "c!", "d?")} {
		if !p.Matches(k) {
			t.Errorf("(Any)* should match %v", k)
		}
	}
	p2 := StarP(Eps())
	if !p2.Matches(nil) {
		t.Errorf("(ε)* should match ε")
	}
	if p2.Matches(prov("a!")) {
		t.Errorf("(ε)* should only match ε")
	}
}

func TestCompetitionPatterns(t *testing.T) {
	// π₁ = (c1+c3)!Any;Any and π₂ = c2!Any;Any from §2.3.2.
	p1 := SeqP(Out(Union(Name("c1"), Name("c3")), AnyP()), AnyP())
	p2 := SeqP(Out(Name("c2"), AnyP()), AnyP())
	if !p1.Matches(prov("c1!")) || !p1.Matches(prov("c3!")) {
		t.Errorf("π₁ should accept entries from c1 and c3")
	}
	if p1.Matches(prov("c2!")) {
		t.Errorf("π₁ should reject entries from c2")
	}
	if !p2.Matches(prov("c2!")) {
		t.Errorf("π₂ should accept entries from c2")
	}
	if p2.Matches(prov("c1!")) {
		t.Errorf("π₂ should reject entries from c1")
	}
}

func TestPublishPattern(t *testing.T) {
	// Any;c!Any — contestant c receives only results for its own entry:
	// the oldest event must be c's original submission.
	p := SeqP(AnyP(), Out(Name("c1"), AnyP()))
	ke := prov("o?", "j1!", "j1?", "o!", "o?", "c1!")
	if !p.Matches(ke) {
		t.Errorf("c1's own published entry should match")
	}
	keOther := prov("o?", "j2!", "j2?", "o!", "o?", "c2!")
	if p.Matches(keOther) {
		t.Errorf("c2's entry should not match c1's pattern")
	}
}

func TestMatcherReuse(t *testing.T) {
	m := Compile(SeqP(AnyP(), Out(Name("d"), AnyP())))
	if !m.Match(prov("d!")) {
		t.Errorf("d! alone should match Any;d!Any")
	}
	if m.Match(prov("d!", "e!")) {
		t.Errorf("oldest event is e!, must not match Any;d!Any")
	}
	// Same matcher, several inputs.
	if m.Match(prov("a!", "b!")) {
		t.Errorf("no d! origin: must not match")
	}
	if !m.Match(prov("a!", "d!")) {
		t.Errorf("d! origin: must match")
	}
}

func TestNullable(t *testing.T) {
	cases := []struct {
		p    Pattern
		want bool
	}{
		{Eps(), true},
		{AnyP(), true},
		{Out(Name("a"), AnyP()), false},
		{SeqP(AnyP(), AnyP()), true},
		{SeqP(Out(Name("a"), AnyP()), AnyP()), false},
		{AltP(Out(Name("a"), AnyP()), Eps()), true},
		{StarP(Out(Name("a"), AnyP())), true},
	}
	for _, c := range cases {
		if got := Nullable(c.p); got != c.want {
			t.Errorf("Nullable(%s) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		p    Pattern
		want string
	}{
		{Eps(), "eps"},
		{AnyP(), "any"},
		{Out(Name("c"), AnyP()), "c!any"},
		{SeqP(Out(Name("c"), AnyP()), AnyP()), "c!any;any"},
		{AltP(Eps(), AnyP()), "eps / any"},
		{StarP(Out(All(), AnyP())), "~!any*"},
		{Out(Union(Name("c1"), Name("c3")), AnyP()), "(c1+c3)!any"},
		{In(Diff(All(), Name("a")), Eps()), "(~-a)?eps"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestSize(t *testing.T) {
	if got := Size(Eps()); got != 1 {
		t.Errorf("Size(eps) = %d", got)
	}
	if got := Size(Out(Name("a"), AnyP())); got != 3 {
		t.Errorf("Size(a!any) = %d", got)
	}
	if got := Size(SeqP(Eps(), Eps(), Eps())); got != 5 {
		t.Errorf("Size(eps;eps;eps) = %d", got)
	}
}

func TestDescribe(t *testing.T) {
	p := SeqP(Out(Name("c"), AnyP()), AltP(Eps(), AnyP()))
	got := Describe(p)
	want := "c!Any;(ε ∨ Any)"
	if got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
}
