package pattern

import (
	"testing"

	"repro/internal/syntax"
)

func TestCaptureMatches(t *testing.T) {
	c := Capture{Var: "y", P: AnyP()}
	if c.Matches(nil) {
		t.Errorf("capture needs a most-recent event: must reject ε")
	}
	if !c.Matches(prov("a!", "b?")) {
		t.Errorf("capture(y, any) should match non-empty sequences")
	}
	// The inner pattern still vets.
	c2 := Capture{Var: "y", P: SeqP(Out(Name("a"), AnyP()), AnyP())}
	if !c2.Matches(prov("a!")) || c2.Matches(prov("b!")) {
		t.Errorf("inner pattern must be enforced")
	}
}

func TestCaptureBindings(t *testing.T) {
	c := Capture{Var: "y", P: AnyP()}
	k := prov("s!", "a!")
	sigma := c.Bindings(k)
	v, ok := sigma["y"]
	if !ok {
		t.Fatalf("no binding for y")
	}
	if v.V.Name != "s" || v.V.Kind != syntax.KindPrincipal {
		t.Errorf("y should bind the most recent handler s as a principal, got %v", v)
	}
	if !v.K.IsEmpty() {
		t.Errorf("captured identity must carry ε provenance")
	}
}

func TestCaptureChainBindsBoth(t *testing.T) {
	c := Capture{Var: "y", P: Capture{Var: "z", P: AnyP()}}
	sigma := c.Bindings(prov("a!"))
	if sigma["y"].V.Name != "a" || sigma["z"].V.Name != "a" {
		t.Errorf("chained captures bind the same head: %v", sigma)
	}
}

func TestCaptureVars(t *testing.T) {
	c := Capture{Var: "y", P: Capture{Var: "z", P: AnyP()}}
	vars := CaptureVars(c)
	if len(vars) != 2 {
		t.Fatalf("vars = %v", vars)
	}
	if len(CaptureVars(AnyP())) != 0 {
		t.Errorf("plain patterns bind nothing")
	}
}

func TestContainsNestedCapture(t *testing.T) {
	topLevel := Capture{Var: "y", P: AnyP()}
	if ContainsNestedCapture(topLevel) {
		t.Errorf("top-level capture is legal")
	}
	nested := SeqP(Capture{Var: "y", P: AnyP()}, AnyP())
	if !ContainsNestedCapture(nested) {
		t.Errorf("capture under concatenation must be flagged")
	}
	underStar := StarP(Capture{Var: "y", P: AnyP()})
	if !ContainsNestedCapture(underStar) {
		t.Errorf("capture under repetition must be flagged")
	}
	insideArg := Out(Name("a"), Capture{Var: "y", P: AnyP()})
	if !ContainsNestedCapture(insideArg) {
		t.Errorf("capture inside an event argument must be flagged")
	}
}

func TestCaptureMatcherPaths(t *testing.T) {
	// Compiled, naive and Nullable all agree on captures.
	c := Capture{Var: "y", P: StarP(Out(All(), AnyP()))}
	m := Compile(c)
	for _, k := range []syntax.Prov{nil, prov("a!"), prov("a!", "b!"), prov("a?")} {
		if m.Match(k) != MatchNaive(c, k) {
			t.Errorf("matchers disagree on %q", k.String())
		}
	}
	if Nullable(c) {
		t.Errorf("captures are never nullable")
	}
	if Size(c) < 2 {
		t.Errorf("Size should count the capture node")
	}
}

func TestCaptureString(t *testing.T) {
	c := Capture{Var: "y", P: SeqP(Out(Name("s"), AnyP()), AnyP())}
	if got := c.String(); got != "capture(y, s!any;any)" {
		t.Errorf("String = %q", got)
	}
}
