package pattern

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/syntax"
)

// genProv and genPat are local generators (the gen package depends on this
// one, so the differential test keeps its own small generators).

func genProv(rng *rand.Rand, maxLen, depth int) syntax.Prov {
	n := rng.Intn(maxLen + 1)
	k := make(syntax.Prov, 0, n)
	principals := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		var inner syntax.Prov
		if depth > 0 && rng.Intn(3) == 0 {
			inner = genProv(rng, maxLen-1, depth-1)
		}
		p := principals[rng.Intn(len(principals))]
		if rng.Intn(2) == 0 {
			k = append(k, syntax.OutEvent(p, inner))
		} else {
			k = append(k, syntax.InEvent(p, inner))
		}
	}
	return k
}

func genGroup(rng *rand.Rand, depth int) Group {
	if depth <= 0 || rng.Intn(2) == 0 {
		if rng.Intn(4) == 0 {
			return All()
		}
		return Name([]string{"a", "b", "c"}[rng.Intn(3)])
	}
	if rng.Intn(2) == 0 {
		return Union(genGroup(rng, depth-1), genGroup(rng, depth-1))
	}
	return Diff(genGroup(rng, depth-1), genGroup(rng, depth-1))
}

func genPat(rng *rand.Rand, depth int) Pattern {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return Eps()
		case 1:
			return AnyP()
		default:
			return Out(genGroup(rng, 1), AnyP())
		}
	}
	switch rng.Intn(7) {
	case 0:
		return Eps()
	case 1:
		return AnyP()
	case 2:
		if rng.Intn(2) == 0 {
			return Out(genGroup(rng, 1), genPat(rng, depth-1))
		}
		return In(genGroup(rng, 1), genPat(rng, depth-1))
	case 3, 4:
		return Cat{L: genPat(rng, depth-1), R: genPat(rng, depth-1)}
	case 5:
		return Alt{L: genPat(rng, depth-1), R: genPat(rng, depth-1)}
	default:
		return Star{P: genPat(rng, depth-1)}
	}
}

// TestDifferentialMemoVsNaive cross-checks the memoised matcher against the
// naive rule-by-rule oracle on thousands of random (pattern, provenance)
// pairs. This is ablation A1's correctness leg.
func TestDifferentialMemoVsNaive(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := genPat(rng, 3)
		m := Compile(p)
		for i := 0; i < 10; i++ {
			k := genProv(rng, 5, 2)
			got := m.Match(k)
			want := MatchNaive(p, k)
			if got != want {
				t.Fatalf("seed %d: pattern %s on %q: memo=%v naive=%v",
					seed, p, k.String(), got, want)
			}
		}
	}
}

// TestDifferentialTopLevelMatches checks that the Pattern.Matches methods
// (which compile on the fly) agree with the naive oracle too.
func TestDifferentialTopLevelMatches(t *testing.T) {
	for seed := int64(400); seed < 600; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := genPat(rng, 3)
		k := genProv(rng, 4, 2)
		if got, want := p.Matches(k), MatchNaive(p, k); got != want {
			t.Fatalf("seed %d: pattern %s on %q: Matches=%v naive=%v",
				seed, p, k.String(), got, want)
		}
	}
}

// TestNullableAgreesWithMatcher: Nullable(π) iff π matches ε.
func TestNullableAgreesWithMatcher(t *testing.T) {
	for seed := int64(600); seed < 800; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := genPat(rng, 3)
		if got, want := Nullable(p), p.Matches(nil); got != want {
			t.Fatalf("seed %d: pattern %s: Nullable=%v Matches(ε)=%v", seed, p, got, want)
		}
	}
}

// TestStarIdempotent: (π*)* matches exactly what π* matches.
func TestStarIdempotent(t *testing.T) {
	for seed := int64(800); seed < 900; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := genPat(rng, 2)
		star := StarP(p)
		dstar := StarP(star)
		for i := 0; i < 10; i++ {
			k := genProv(rng, 4, 1)
			if star.Matches(k) != dstar.Matches(k) {
				t.Fatalf("seed %d: (π*)* disagrees with π* on %q for π=%s", seed, k.String(), p)
			}
		}
	}
}

// TestAltCommutative: π∨π' and π'∨π match the same sequences.
func TestAltCommutative(t *testing.T) {
	for seed := int64(900); seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p1, p2 := genPat(rng, 2), genPat(rng, 2)
		a := AltP(p1, p2)
		b := AltP(p2, p1)
		for i := 0; i < 10; i++ {
			k := genProv(rng, 4, 1)
			if a.Matches(k) != b.Matches(k) {
				t.Fatalf("seed %d: alternation not commutative on %q", seed, k.String())
			}
		}
	}
}

// TestCatAssociative: (π;π');π” ≡ π;(π';π”).
func TestCatAssociative(t *testing.T) {
	for seed := int64(1000); seed < 1100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p1, p2, p3 := genPat(rng, 1), genPat(rng, 1), genPat(rng, 1)
		l := Cat{L: Cat{L: p1, R: p2}, R: p3}
		r := Cat{L: p1, R: Cat{L: p2, R: p3}}
		for i := 0; i < 10; i++ {
			k := genProv(rng, 4, 1)
			if l.Matches(k) != r.Matches(k) {
				t.Fatalf("seed %d: concatenation not associative on %q", seed, k.String())
			}
		}
	}
}

// TestGroupAlgebra checks the ⟦−⟧ set algebra on random groups and
// principals, against a brute-force evaluation.
func TestGroupAlgebra(t *testing.T) {
	var eval func(g Group, p string) bool
	eval = func(g Group, p string) bool {
		switch g := g.(type) {
		case GName:
			return g.Name == p
		case GAll:
			return true
		case GUnion:
			return eval(g.L, p) || eval(g.R, p)
		case GDiff:
			return eval(g.L, p) && !eval(g.R, p)
		default:
			t.Fatalf("unknown group %T", g)
			return false
		}
	}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := genGroup(rng, 3)
		for _, p := range []string{"a", "b", "c", "zzz" + strconv.Itoa(int(seed))} {
			if g.Contains(p) != eval(g, p) {
				t.Fatalf("seed %d: group %s on %s", seed, g, p)
			}
		}
	}
}

// FuzzDifferentialMemoVsNaive: the fuzzer picks the generator seed, so
// the corpus walks pattern/provenance shapes the fixed seed sweep never
// visits; the memoised matcher must agree with the naive oracle on all
// of them. CI runs this for a short smoke budget on every PR.
func FuzzDifferentialMemoVsNaive(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(42), int64(7))
	f.Fuzz(func(t *testing.T, patSeed, provSeed int64) {
		p := genPat(rand.New(rand.NewSource(patSeed)), 3)
		m := Compile(p)
		rng := rand.New(rand.NewSource(provSeed))
		for i := 0; i < 8; i++ {
			k := genProv(rng, 5, 2)
			if got, want := m.Match(k), MatchNaive(p, k); got != want {
				t.Fatalf("pattern %s on %q: memo=%v naive=%v", p, k.String(), got, want)
			}
		}
	})
}
