// Package gen generates random but well-formed terms of the provenance
// calculus — provenance sequences, patterns, logs, processes and closed
// systems — for property-based testing of the meta-theory (Propositions
// 1-3 and Theorem 1 of the paper). All generation is driven by a caller-
// supplied PRNG so failures reproduce from a seed.
package gen

import (
	"math/rand"
	"strconv"

	"repro/internal/logs"
	"repro/internal/pattern"
	"repro/internal/syntax"
)

// Config bounds the shape of generated terms.
type Config struct {
	// Principals and Channels are the name pools.
	Principals []string
	Channels   []string
	// MaxProvLen bounds top-level provenance length; MaxProvDepth bounds
	// event nesting.
	MaxProvLen   int
	MaxProvDepth int
	// MaxPatDepth bounds pattern AST depth.
	MaxPatDepth int
	// MaxProcDepth bounds process AST depth.
	MaxProcDepth int
	// MaxComponents bounds the number of parallel components of a system.
	MaxComponents int
	// MaxLogLen bounds generated log spine length.
	MaxLogLen int
}

// Default returns a configuration producing small, interaction-rich terms.
func Default() Config {
	return Config{
		Principals:    []string{"a", "b", "c", "d"},
		Channels:      []string{"m", "n", "l", "k"},
		MaxProvLen:    4,
		MaxProvDepth:  2,
		MaxPatDepth:   3,
		MaxProcDepth:  3,
		MaxComponents: 4,
		MaxLogLen:     6,
	}
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

// Prov generates a random provenance sequence.
func (c Config) Prov(rng *rand.Rand) syntax.Prov {
	return c.prov(rng, c.MaxProvDepth)
}

func (c Config) prov(rng *rand.Rand, depth int) syntax.Prov {
	n := rng.Intn(c.MaxProvLen + 1)
	k := make(syntax.Prov, 0, n)
	for i := 0; i < n; i++ {
		k = append(k, c.event(rng, depth))
	}
	return k
}

func (c Config) event(rng *rand.Rand, depth int) syntax.Event {
	var inner syntax.Prov
	if depth > 0 && rng.Intn(3) == 0 {
		inner = c.prov(rng, depth-1)
	}
	p := pick(rng, c.Principals)
	if rng.Intn(2) == 0 {
		return syntax.OutEvent(p, inner)
	}
	return syntax.InEvent(p, inner)
}

// Group generates a random group expression.
func (c Config) Group(rng *rand.Rand, depth int) pattern.Group {
	if depth <= 0 || rng.Intn(2) == 0 {
		if rng.Intn(4) == 0 {
			return pattern.All()
		}
		return pattern.Name(pick(rng, c.Principals))
	}
	l := c.Group(rng, depth-1)
	r := c.Group(rng, depth-1)
	if rng.Intn(2) == 0 {
		return pattern.Union(l, r)
	}
	return pattern.Diff(l, r)
}

// Pattern generates a random pattern of the sample language.
func (c Config) Pattern(rng *rand.Rand) pattern.Pattern {
	return c.pat(rng, c.MaxPatDepth)
}

func (c Config) pat(rng *rand.Rand, depth int) pattern.Pattern {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return pattern.Eps()
		case 1:
			return pattern.AnyP()
		default:
			return c.eventPat(rng, 0)
		}
	}
	switch rng.Intn(6) {
	case 0:
		return pattern.Eps()
	case 1:
		return pattern.AnyP()
	case 2:
		return c.eventPat(rng, depth)
	case 3:
		return pattern.SeqP(c.pat(rng, depth-1), c.pat(rng, depth-1))
	case 4:
		return pattern.AltP(c.pat(rng, depth-1), c.pat(rng, depth-1))
	default:
		return pattern.StarP(c.pat(rng, depth-1))
	}
}

func (c Config) eventPat(rng *rand.Rand, depth int) pattern.Pattern {
	g := c.Group(rng, 1)
	var arg pattern.Pattern = pattern.AnyP()
	if depth > 0 && rng.Intn(3) == 0 {
		arg = c.pat(rng, depth-1)
	} else if rng.Intn(3) == 0 {
		arg = pattern.Eps()
	}
	if rng.Intn(2) == 0 {
		return pattern.Out(g, arg)
	}
	return pattern.In(g, arg)
}

// Log generates a random closed log (actions over the name pools, no
// variables).
func (c Config) Log(rng *rand.Rand) logs.Log {
	return c.log(rng, c.MaxLogLen)
}

func (c Config) log(rng *rand.Rand, size int) logs.Log {
	if size <= 0 || rng.Intn(5) == 0 {
		return logs.Nil()
	}
	if rng.Intn(4) == 0 {
		half := size / 2
		return logs.Compose(c.log(rng, half), c.log(rng, size-half))
	}
	return logs.Prefix(c.Action(rng), c.log(rng, size-1))
}

// Action generates a random closed log action.
func (c Config) Action(rng *rand.Rand) logs.Action {
	p := pick(rng, c.Principals)
	chn := logs.NameT(pick(rng, c.Channels))
	val := logs.NameT(pick(rng, append(c.Channels, c.Principals...)))
	switch rng.Intn(4) {
	case 0:
		return logs.SndAct(p, chn, val)
	case 1:
		return logs.RcvAct(p, chn, val)
	case 2:
		return logs.IftAct(p, val, val)
	default:
		return logs.IffAct(p, chn, val)
	}
}

// Weaken produces a log φ' with φ' ≼ φ by applying one information-
// reducing transformation: dropping the head action (inverse of Log-Pre2),
// duplicating the log (inverse of Log-Comp1's nonlinearity, φ|φ ≼ φ),
// forgetting the order of the first two spine actions (α;β;ρ ⇒ (α|β);ρ is
// not well-formed, so we produce α;ρ | β;ρ), or replacing a concrete
// channel with a fresh bound variable. Used to exercise ≼ and its
// transitivity on generated inputs.
func (c Config) Weaken(rng *rand.Rand, l logs.Log, freshID *int) logs.Log {
	switch rng.Intn(4) {
	case 0: // drop head action
		if p, ok := l.(*logs.Pre); ok {
			return p.Rest
		}
		return l
	case 1: // duplicate: φ|φ ≼ φ
		return &logs.Comp{L: l, R: l}
	case 2: // forget order of the two most recent actions
		if p, ok := l.(*logs.Pre); ok {
			if q, ok := p.Rest.(*logs.Pre); ok {
				return logs.Compose(
					logs.Prefix(p.Act, q.Rest),
					logs.Prefix(q.Act, q.Rest),
				)
			}
		}
		return l
	default: // abstract the head action's channel into a bound variable
		if p, ok := l.(*logs.Pre); ok {
			if (p.Act.Kind == logs.Snd || p.Act.Kind == logs.Rcv) && p.Act.A.Kind == logs.TName {
				*freshID++
				x := "w" + strconv.Itoa(*freshID)
				act := p.Act
				act.A = logs.VarT(x)
				// The variable binds nothing below (the original name may
				// still occur, which is fine: less information).
				return logs.Prefix(act, p.Rest)
			}
		}
		return l
	}
}

// scope tracks the variables in scope while generating a process body.
type scope []string

// Process generates a random process for the given principal with the
// given variables in scope. All value annotations are ε (so that generated
// initial systems trivially have correct provenance).
func (c Config) Process(rng *rand.Rand, sc []string) syntax.Process {
	return c.proc(rng, scope(sc), c.MaxProcDepth)
}

func (c Config) ident(rng *rand.Rand, sc scope, wantChan bool) syntax.Ident {
	// Prefer variables sometimes, so received values flow onward.
	if len(sc) > 0 && rng.Intn(3) == 0 {
		return syntax.Var(sc[rng.Intn(len(sc))])
	}
	if wantChan || rng.Intn(4) != 0 {
		return syntax.IdentVal(syntax.Chan(pick(rng, c.Channels)), nil)
	}
	return syntax.IdentVal(syntax.Principal(pick(rng, c.Principals)), nil)
}

func (c Config) proc(rng *rand.Rand, sc scope, depth int) syntax.Process {
	if depth <= 0 {
		if rng.Intn(2) == 0 {
			return syntax.Stop()
		}
		return syntax.Out(c.ident(rng, sc, true), c.ident(rng, sc, false))
	}
	switch rng.Intn(8) {
	case 0:
		return syntax.Stop()
	case 1, 2:
		return syntax.Out(c.ident(rng, sc, true), c.ident(rng, sc, false))
	case 3, 4:
		// Input with 1-2 branches; mostly permissive patterns so that
		// communication actually happens in generated systems.
		chn := c.ident(rng, sc, true)
		nb := 1 + rng.Intn(2)
		branches := make([]*syntax.Branch, 0, nb)
		for i := 0; i < nb; i++ {
			x := "x" + strconv.Itoa(len(sc)) + "_" + strconv.Itoa(i)
			var pat syntax.Pattern = pattern.AnyP()
			if rng.Intn(3) == 0 {
				pat = c.Pattern(rng)
			}
			body := c.proc(rng, append(sc, x), depth-1)
			branches = append(branches, &syntax.Branch{
				Pats: []syntax.Pattern{pat}, Vars: []string{x}, Body: body,
			})
		}
		return &syntax.InputSum{Chan: chn, Branches: branches}
	case 5:
		return &syntax.If{
			L:    c.ident(rng, sc, false),
			R:    c.ident(rng, sc, false),
			Then: c.proc(rng, sc, depth-1),
			Else: c.proc(rng, sc, depth-1),
		}
	case 6:
		return &syntax.Par{L: c.proc(rng, sc, depth-1), R: c.proc(rng, sc, depth-1)}
	default:
		return &syntax.Restrict{Name: "r" + strconv.Itoa(rng.Intn(3)), Body: c.proc(rng, sc, depth-1)}
	}
}

// System generates a random closed system: a parallel composition of
// located processes, messages with ε-annotated payloads, and occasional
// system-level restrictions.
func (c Config) System(rng *rand.Rand) syntax.System {
	nc := 1 + rng.Intn(c.MaxComponents)
	parts := make([]syntax.System, 0, nc)
	for i := 0; i < nc; i++ {
		switch rng.Intn(5) {
		case 0:
			parts = append(parts, syntax.Msg(pick(rng, c.Channels),
				syntax.Fresh(syntax.Chan(pick(rng, c.Channels)))))
		default:
			p := pick(rng, c.Principals)
			parts = append(parts, syntax.Loc(p, c.Process(rng, nil)))
		}
	}
	s := syntax.SysParAll(parts...)
	if rng.Intn(4) == 0 {
		s = &syntax.SysRestrict{Name: pick(rng, c.Channels), Body: s}
	}
	return s
}
