package gen

import (
	"math/rand"

	"repro/internal/logs"
)

// Mix weighs the four log-action kinds when generating workload
// actions. Weights are relative (not percentages); a zero Mix falls
// back to the uniform distribution of Config.Action.
type Mix struct {
	Snd, Rcv, Ift, Iff int
}

// MixUniform weighs all four kinds equally.
func MixUniform() Mix { return Mix{Snd: 1, Rcv: 1, Ift: 1, Iff: 1} }

// MixSendHeavy is the shape of a monitored middleware fleet: mostly
// sends, a few receives, rare trust-level operations.
func MixSendHeavy() Mix { return Mix{Snd: 8, Rcv: 3, Ift: 1, Iff: 1} }

func (m Mix) total() int { return m.Snd + m.Rcv + m.Ift + m.Iff }

// ActionMixed generates one closed action whose kind is drawn from the
// mix and whose names come from the Config pools.
func (c Config) ActionMixed(rng *rand.Rand, m Mix) logs.Action {
	if m.total() == 0 {
		return c.Action(rng)
	}
	p := pick(rng, c.Principals)
	chn := logs.NameT(pick(rng, c.Channels))
	val := logs.NameT(pick(rng, append(c.Channels, c.Principals...)))
	r := rng.Intn(m.total())
	switch {
	case r < m.Snd:
		return logs.SndAct(p, chn, val)
	case r < m.Snd+m.Rcv:
		return logs.RcvAct(p, chn, val)
	case r < m.Snd+m.Rcv+m.Ift:
		return logs.IftAct(p, val, val)
	default:
		return logs.IffAct(p, chn, val)
	}
}

// Actions generates n mixed actions.
func (c Config) Actions(rng *rand.Rand, n int, m Mix) []logs.Action {
	out := make([]logs.Action, n)
	for i := range out {
		out[i] = c.ActionMixed(rng, m)
	}
	return out
}
