package gen

import (
	"math/rand"
	"testing"

	"repro/internal/logs"
	"repro/internal/semantics"
	"repro/internal/syntax"
)

func TestGeneratedSystemsAreClosed(t *testing.T) {
	cfg := Default()
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := cfg.System(rng)
		if !syntax.IsClosed(s) {
			t.Errorf("seed %d: generated system has free variables: %s", seed, s)
		}
	}
}

func TestGeneratedSystemsNormalize(t *testing.T) {
	cfg := Default()
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := cfg.System(rng)
		n := semantics.Normalize(s)
		// Round trip through the term representation.
		n2 := semantics.Normalize(n.ToSystem())
		if n.Canon() != n2.Canon() {
			t.Errorf("seed %d: normal form not stable under round trip", seed)
		}
	}
}

func TestGeneratedSystemsReduce(t *testing.T) {
	// Reduction must never panic on generated systems, and some generated
	// systems must actually communicate (the generator is not degenerate).
	cfg := Default()
	communicated := 0
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := cfg.System(rng)
		tr := semantics.Run(s, seed, 30)
		for _, l := range tr.Labels {
			if l.Kind == semantics.ActRecv {
				communicated++
				break
			}
		}
	}
	if communicated < 20 {
		t.Errorf("only %d/200 generated systems communicated; generator too degenerate", communicated)
	}
}

func TestGeneratedProvBounded(t *testing.T) {
	cfg := Default()
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := cfg.Prov(rng)
		if len(k) > cfg.MaxProvLen {
			t.Errorf("prov too long: %d", len(k))
		}
		if k.Depth() > cfg.MaxProvDepth+1 {
			t.Errorf("prov too deep: %d", k.Depth())
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Default()
	s1 := cfg.System(rand.New(rand.NewSource(7)))
	s2 := cfg.System(rand.New(rand.NewSource(7)))
	if s1.String() != s2.String() {
		t.Errorf("same seed must generate the same system")
	}
}

func TestGeneratedLogsClosed(t *testing.T) {
	cfg := Default()
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := cfg.Log(rng)
		if fv := logs.FreeVars(l); len(fv) != 0 {
			t.Errorf("seed %d: generated log has free variables %v", seed, fv)
		}
	}
}
