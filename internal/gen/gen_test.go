package gen

import (
	"testing"

	"repro/internal/logs"
	"repro/internal/semantics"
	"repro/internal/syntax"
	"repro/internal/testutil"
)

func TestGeneratedSystemsAreClosed(t *testing.T) {
	cfg := Default()
	for _, seed := range testutil.SeedRange(t, 200) {
		rng := testutil.Rand(seed)
		s := cfg.System(rng)
		if !syntax.IsClosed(s) {
			t.Errorf("seed %d: generated system has free variables: %s", seed, s)
		}
	}
}

func TestGeneratedSystemsNormalize(t *testing.T) {
	cfg := Default()
	for _, seed := range testutil.SeedRange(t, 200) {
		rng := testutil.Rand(seed)
		s := cfg.System(rng)
		n := semantics.Normalize(s)
		// Round trip through the term representation.
		n2 := semantics.Normalize(n.ToSystem())
		if n.Canon() != n2.Canon() {
			t.Errorf("seed %d: normal form not stable under round trip", seed)
		}
	}
}

func TestGeneratedSystemsReduce(t *testing.T) {
	// Reduction must never panic on generated systems, and some generated
	// systems must actually communicate (the generator is not degenerate).
	cfg := Default()
	seeds := testutil.SeedRange(t, 200)
	communicated := 0
	for _, seed := range seeds {
		rng := testutil.Rand(seed)
		s := cfg.System(rng)
		tr := semantics.Run(s, seed, 30)
		for _, l := range tr.Labels {
			if l.Kind == semantics.ActRecv {
				communicated++
				break
			}
		}
	}
	// The degeneracy floor only means anything over the full sweep, not a
	// single REPRO_SEED replay.
	if len(seeds) == 200 && communicated < 20 {
		t.Errorf("only %d/200 generated systems communicated; generator too degenerate", communicated)
	}
}

func TestGeneratedProvBounded(t *testing.T) {
	cfg := Default()
	for _, seed := range testutil.SeedRange(t, 100) {
		rng := testutil.Rand(seed)
		k := cfg.Prov(rng)
		if len(k) > cfg.MaxProvLen {
			t.Errorf("seed %d: prov too long: %d", seed, len(k))
		}
		if k.Depth() > cfg.MaxProvDepth+1 {
			t.Errorf("seed %d: prov too deep: %d", seed, k.Depth())
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Default()
	seed := testutil.Seed(t, 7)
	s1 := cfg.System(testutil.Rand(seed))
	s2 := cfg.System(testutil.Rand(seed))
	if s1.String() != s2.String() {
		t.Errorf("same seed must generate the same system")
	}
}

func TestGeneratedLogsClosed(t *testing.T) {
	cfg := Default()
	for _, seed := range testutil.SeedRange(t, 100) {
		rng := testutil.Rand(seed)
		l := cfg.Log(rng)
		if fv := logs.FreeVars(l); len(fv) != 0 {
			t.Errorf("seed %d: generated log has free variables %v", seed, fv)
		}
	}
}
