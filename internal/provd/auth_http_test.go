package provd

// HTTP-surface enforcement: the same grants the binary listener
// enforces (internal/ingest/auth_test.go is the raw-wire twin), bound
// here to bearer tokens and client certificates. /healthz and
// /metrics stay open; everything else demands a known identity.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/auth"
	"repro/internal/logs"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/trust"
)

// authedServer builds an enforcing app over a store holding one "s"
// and one "p" record, with a policy hiding "s" from "c": a writer
// identity bound to principal alice, a reader identity bound to
// observer c.
func authedServer(t *testing.T) (*httptest.Server, *store.Store, *auth.Guard) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for _, p := range []string{"s", "p"} {
		if _, err := st.Append(logs.SndAct(p, logs.NameT("m"), logs.NameT("v"))); err != nil {
			t.Fatal(err)
		}
	}
	m := auth.NewMap()
	if err := m.Add(auth.Grant{Name: "writer", Principals: []string{"alice"}, Roles: auth.RoleAppend}, "wtok"); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(auth.Grant{Name: "reader", Observer: "c", Roles: auth.RoleRead}, "rtok"); err != nil {
		t.Fatal(err)
	}
	guard := auth.NewGuard(m)
	app := NewServer(st, trust.NewDisclosurePolicy().HideFrom("s", "c"))
	app.SetAuth(guard)
	ts := httptest.NewServer(app)
	t.Cleanup(ts.Close)
	return ts, st, guard
}

// do issues one request with an optional bearer token, decoding the
// JSON response into out (when non-nil) and returning the status.
func do(t *testing.T, ts *httptest.Server, method, path, token string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPAuthTokens: bearer-token identities get exactly their
// granted authority — 401 without an identity, 403 outside the grant,
// observer coercion on reads — while health and metrics stay open.
func TestHTTPAuthTokens(t *testing.T) {
	ts, st, guard := authedServer(t)

	// No identity: reads and writes refused, probes and scrapes open.
	if code := do(t, ts, "GET", "/log", "", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /log: %d", code)
	}
	if code := do(t, ts, "GET", "/healthz", "", nil, nil); code != http.StatusOK {
		t.Fatalf("/healthz should stay open: %d", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "provd_auth_conn_rejects_total 1") {
		t.Fatalf("metrics missing the rejection:\n%s", metrics)
	}

	// The writer appends within its grant…
	action := map[string]any{"principal": "alice", "kind": "snd",
		"a": map[string]string{"name": "m"}, "b": map[string]string{"name": "v"}}
	if code := do(t, ts, "POST", "/append", "wtok", action, nil); code != http.StatusOK {
		t.Fatalf("granted append: %d", code)
	}
	// …not as anyone else…
	action["principal"] = "bob"
	if code := do(t, ts, "POST", "/append", "wtok", action, nil); code != http.StatusForbidden {
		t.Fatalf("impersonating append: %d", code)
	}
	// …not smuggled in a batch (refused whole — none appended)…
	batch := []map[string]any{
		{"principal": "alice", "kind": "snd", "a": map[string]string{"name": "m"}, "b": map[string]string{"name": "v"}},
		{"principal": "bob", "kind": "snd", "a": map[string]string{"name": "m"}, "b": map[string]string{"name": "v"}},
	}
	if code := do(t, ts, "POST", "/append", "wtok", batch, nil); code != http.StatusForbidden {
		t.Fatalf("mixed batch: %d", code)
	}
	if n := len(st.Records("bob")); n != 0 {
		t.Fatalf("bob has %d records; impersonation committed", n)
	}
	// …and cannot read at all.
	if code := do(t, ts, "GET", "/log", "wtok", nil, nil); code != http.StatusForbidden {
		t.Fatalf("writer /log: %d", code)
	}

	// The reader asks for the full view and receives observer c's:
	// "s" is hidden from c, so its record comes back masked.
	var lr LogResponse
	if code := do(t, ts, "GET", "/log?from=0", "rtok", nil, &lr); code != http.StatusOK {
		t.Fatalf("reader /log: %d", code)
	}
	if lr.Observer != "c" {
		t.Fatalf("observer not coerced: %q", lr.Observer)
	}
	masked := false
	for _, r := range lr.Records {
		if r.Action.Principal == "s" {
			t.Fatalf("hidden principal leaked: %+v", r)
		}
		if r.Action.Principal == trust.RedactedPrincipal {
			masked = true
		}
	}
	if !masked {
		t.Fatal("no record was masked; coercion did not reach redaction")
	}
	// The reader cannot write.
	action["principal"] = "alice"
	if code := do(t, ts, "POST", "/append", "rtok", action, nil); code != http.StatusForbidden {
		t.Fatalf("reader append: %d", code)
	}

	if a, q := guard.AppendRejects.Load(), guard.QueryRejects.Load(); a != 3 || q != 1 {
		t.Fatalf("rejection counters: append %d (want 3), query %d (want 1)", a, q)
	}
}

// TestHTTPAuthClientCert: over mutual TLS the client certificate is
// the identity — a mapped CN gets its grant, an unmapped one is 401
// even though its certificate verified.
func TestHTTPAuthClientCert(t *testing.T) {
	ca, err := testutil.NewTestCA()
	if err != nil {
		t.Fatal(err)
	}
	serverConf, err := ca.ServerConfig("server")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	m := auth.NewMap()
	if err := m.Add(auth.Grant{Name: "writer", Principals: []string{"alice"}, Roles: auth.RoleAppend}, ""); err != nil {
		t.Fatal(err)
	}
	app := NewServer(st2, nil)
	app.SetAuth(auth.NewGuard(m))
	tls2 := httptest.NewUnstartedServer(app)
	tls2.TLS = serverConf
	tls2.StartTLS()
	t.Cleanup(tls2.Close)

	client := func(identity string) *http.Client {
		conf, err := ca.ClientConfig(identity)
		if err != nil {
			t.Fatal(err)
		}
		conf = conf.Clone()
		conf.ServerName = "127.0.0.1"
		return &http.Client{Transport: &http.Transport{TLSClientConfig: conf}}
	}

	post := func(c *http.Client, principal string) int {
		b, _ := json.Marshal(map[string]any{"principal": principal, "kind": "snd",
			"a": map[string]string{"name": "m"}, "b": map[string]string{"name": "v"}})
		resp, err := c.Post(tls2.URL+"/append", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(client("writer"), "alice"); code != http.StatusOK {
		t.Fatalf("cert-identified append: %d", code)
	}
	if code := post(client("writer"), "bob"); code != http.StatusForbidden {
		t.Fatalf("cert-identified impersonation: %d", code)
	}
	if code := post(client("stranger"), "alice"); code != http.StatusUnauthorized {
		t.Fatalf("unmapped certificate: %d", code)
	}
	if n := len(st2.Records("alice")); n != 1 {
		t.Fatalf("alice has %d records, want 1", n)
	}
}
