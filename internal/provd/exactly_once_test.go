package provd

// The exactly-once e2e: the same logical batch stream is driven once
// cleanly (the control run) and once through every failure the session
// protocol protects against — acks lost mid-batch forcing client
// replays, and a full provd restart (drain, close, recover from disk)
// in the middle of the stream — and the two stores must end up
// *bit-identical*: same records, same global sequence numbers, not
// merely the same audit verdicts. This is the Definition-3 story at
// fleet scale: the durable log is the exact spine of monitored actions
// even when the transport and the daemon misbehave.

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/provclient"
	"repro/internal/store"
	"repro/internal/testutil"
)

// TestExactlyOnceBitIdenticalLog: lost acks mid-stream (client
// reconnects and replays) and a provd restart mid-stream (session table
// recovered from disk) leave the experiment store bit-identical to the
// no-failure control run — same actions, same global sequence numbers —
// and the recovered log still audits correctly.
func TestExactlyOnceBitIdenticalLog(t *testing.T) {
	const batches = 10

	// Control run: no failures, one connection, sequential batches.
	ctlStore := testutil.OpenStore(t, t.TempDir(), store.Options{SegmentBytes: 512})
	ctlSrv := ingest.NewServer(ctlStore, ingest.Options{})
	ctlAddr, err := ctlSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctlSrv.Close()
	ctl := provclient.New(ctlAddr, provclient.Options{Conns: 1})
	for i := 0; i < batches; i++ {
		if _, err := ctl.AppendBatch(chainActs(1, i)); err != nil {
			t.Fatalf("control batch %d: %v", i, err)
		}
	}
	ctl.Close()
	want := ctlStore.GlobalRecords()
	if len(want) != batches*5 {
		t.Fatalf("control run has %d records, want %d", len(want), batches*5)
	}

	// Experiment run. Sequential acked batches make the ack ordinals
	// deterministic: batch k is ack k plus one per earlier re-ack. Drop
	// ordinal 3 (batch seq 3; its replay re-ack is ordinal 4) and
	// ordinal 9 (batch seq 8, the first ack after the restart below —
	// seqs 4,5 are acks 5,6, seqs 6,7 are acks 7,8 — so its replay is
	// answered by the *recovered* session table).
	expDir := t.TempDir()
	expStore, err := store.Open(expDir, store.Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	expSrv := ingest.NewServer(expStore, ingest.Options{})
	expAddr, err := expSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := testutil.NewProxy(expAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	proxy.DropAckAt(3, 9)
	exp := provclient.New(proxy.Addr(), provclient.Options{Conns: 1, RequestTimeout: 5 * time.Second})
	defer exp.Close()

	for i := 0; i < 5; i++ {
		if _, err := exp.AppendBatch(chainActs(1, i)); err != nil {
			t.Fatalf("experiment batch %d: %v", i, err)
		}
	}
	if got := expSrv.Stats().DedupReplays; got != 1 {
		t.Fatalf("pre-restart DedupReplays = %d, want 1 (the dropped ack's replay)", got)
	}

	// Restart provd mid-stream: drain the listener, close the store,
	// recover both — including the session table — from disk.
	expSrv.Close()
	if err := expStore.Close(); err != nil {
		t.Fatal(err)
	}
	expStore2, err := store.Open(expDir, store.Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer expStore2.Close()
	expSrv2 := ingest.NewServer(expStore2, ingest.Options{})
	expAddr2, err := expSrv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer expSrv2.Close()
	proxy.SetBackend(expAddr2)

	for i := 5; i < batches; i++ {
		if _, err := exp.AppendBatch(chainActs(1, i)); err != nil {
			t.Fatalf("post-restart batch %d: %v", i, err)
		}
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if got := proxy.AcksDropped(); got != 2 {
		t.Fatalf("proxy dropped %d acks, want 2; the failure injection misfired", got)
	}
	if got := expSrv2.Stats().DedupReplays; got != 1 {
		t.Fatalf("post-restart DedupReplays = %d, want 1", got)
	}

	// The acceptance bar: bit-identical, not merely audit-equivalent.
	if err := testutil.DiffStores(ctlStore, expStore2); err != nil {
		t.Fatalf("experiment store diverged from control: %v", err)
	}

	// And the recovered log still justifies a genuine chain while
	// refusing a forged one, served through the provd app layer.
	ts := httptest.NewServer(NewServer(expStore2, nil))
	defer ts.Close()
	for i, claim := range []AuditRequest{
		{Value: "v1_0", Prov: []EventDTO{
			{Principal: "c1", Dir: "?"}, {Principal: "s1", Dir: "!"},
			{Principal: "s1", Dir: "?"}, {Principal: "a1", Dir: "!"},
		}},
		{Value: "v1_0", Prov: []EventDTO{
			{Principal: "c1", Dir: "?"}, {Principal: "zz", Dir: "!"},
		}},
	} {
		var resp AuditResponse
		if code := postJSON(t, ts, "/audit", claim, &resp); code != 200 {
			t.Fatalf("audit status %d", code)
		}
		if genuine := i == 0; resp.Correct != genuine {
			t.Fatalf("claim %d: verdict %v, want %v (%s)", i, resp.Correct, genuine, resp.Detail)
		}
	}
}
