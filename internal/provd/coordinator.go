package provd

// Coordinator mode: the HTTP front end of a partitioned fleet
// (docs/architecture.md, "The partition layer"). A coordinator owns no
// store — every read scatters to the partition leaders over the binary
// read protocol and merges (internal/cluster.Fleet), every write routes
// by owning principal (internal/cluster.Client), and the per-principal
// audit proxies to the one leader holding every record the claim's
// provenance can name, so its verdict is the owner's verdict bit for
// bit.
//
// The surface mirrors the single-node Server: same routes, same DTOs,
// same error mapping, so operators and tooling move between a node and
// a fleet by changing an address. The differences are inherent to
// partitioning and documented in docs/operations.md: the merged /log
// tail is a single page, forward walks paginate by vector cursor, and
// a cross-partition audit is refused with the partition split named
// rather than answered with a verdict no single log justifies.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/cluster"
	"repro/internal/ingest"
	"repro/internal/logs"
	"repro/internal/query"
)

// writeJSON, resolveGrant and withGrant are the package-level forms of
// the Server helpers, shared by coordinator mode (which has no Server).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func resolveGrant(g *auth.Guard, r *http.Request) *auth.Grant {
	if r.TLS != nil && len(r.TLS.PeerCertificates) > 0 {
		if gr := g.GrantForCert(r.TLS.PeerCertificates); gr != nil {
			return gr
		}
	}
	if tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer "); ok {
		return g.Map.ByToken(tok)
	}
	return nil
}

func withGrant(ctx context.Context, g *auth.Grant) context.Context {
	return context.WithValue(ctx, grantKey{}, g)
}

// CoordinatorOptions tunes the fleet-facing side of a coordinator.
type CoordinatorOptions struct {
	// Client performs the HTTP calls to partition leaders (audit proxy,
	// principal census). Configure its transport with the fleet's TLS
	// material; nil uses a default client with a 30s timeout.
	Client *http.Client
	// Token is sent as a bearer token on leader HTTP calls when the
	// fleet runs token auth (the dev shape; mTLS rides Client).
	Token string
}

// Coordinator serves the provd HTTP surface over a partitioned fleet.
type Coordinator struct {
	fleet   *cluster.Fleet
	opts    CoordinatorOptions
	mux     *http.ServeMux
	started time.Time
	ingest  *ingest.Server
	auth    *auth.Guard

	requests atomic.Uint64
	badReqs  atomic.Uint64
	proxied  atomic.Uint64
	refusals atomic.Uint64 // cross-partition audits refused
}

// NewCoordinator wires the coordinator routes over a fleet read plane.
func NewCoordinator(f *cluster.Fleet, opts CoordinatorOptions) *Coordinator {
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	c := &Coordinator{fleet: f, opts: opts, mux: http.NewServeMux(), started: time.Now()}
	c.mux.HandleFunc("POST /append", c.handleAppend)
	c.mux.HandleFunc("GET /log", c.handleGlobalLog)
	c.mux.HandleFunc("GET /log/{principal}", c.handleShardLog)
	c.mux.HandleFunc("POST /audit", c.handleAudit)
	c.mux.HandleFunc("POST /compact", c.handleCompact)
	c.mux.HandleFunc("GET /principals", c.handlePrincipals)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	return c
}

// AttachIngest joins the coordinator's binary listener counters (the
// scatter-gather query/follow surface) to /metrics.
func (c *Coordinator) AttachIngest(in *ingest.Server) { c.ingest = in }

// SetAuth turns on identity enforcement, the same Guard semantics as
// the single-node Server.
func (c *Coordinator) SetAuth(g *auth.Guard) { c.auth = g }

func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	if c.auth != nil && r.URL.Path != "/healthz" && r.URL.Path != "/metrics" {
		grant := resolveGrant(c.auth, r)
		if grant == nil {
			c.auth.ConnRejects.Add(1)
			writeJSON(w, http.StatusUnauthorized, map[string]string{
				"error": "no known identity: present a client certificate or bearer token",
			})
			return
		}
		r = r.WithContext(withGrant(r.Context(), grant))
	}
	c.mux.ServeHTTP(w, r)
}

func (c *Coordinator) clientError(w http.ResponseWriter, err error) {
	c.badReqs.Add(1)
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

// coerceRead mirrors Server.coerceRead for the coordinator's guard.
func (c *Coordinator) coerceRead(w http.ResponseWriter, r *http.Request, observer *string) bool {
	grant := grantFrom(r)
	if grant == nil {
		return true
	}
	if !grant.CanRead() {
		c.auth.QueryRejects.Add(1)
		writeJSON(w, http.StatusForbidden, map[string]string{
			"error": fmt.Sprintf("identity %q lacks the read role", grant.Name),
		})
		return false
	}
	*observer = grant.CoerceObserver(*observer)
	return true
}

// handleAppend routes a write through the fleet's binary write plane.
// A batch may span partitions; the response reports each leader's
// share, because a fleet assigns no single contiguous sequence block.
func (c *Coordinator) handleAppend(w http.ResponseWriter, r *http.Request) {
	grant := grantFrom(r)
	if grant != nil && !grant.CanAppend() {
		c.auth.AppendRejects.Add(1)
		writeJSON(w, http.StatusForbidden, map[string]string{
			"error": fmt.Sprintf("identity %q lacks the append role", grant.Name),
		})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		c.clientError(w, fmt.Errorf("reading body: %w", err))
		return
	}
	var dtos []ActionDTO
	if t := bytes.TrimLeft(body, " \t\r\n"); len(t) > 0 && t[0] == '[' {
		if err := json.Unmarshal(t, &dtos); err != nil {
			c.clientError(w, fmt.Errorf("decoding action batch: %w", err))
			return
		}
	} else {
		var dto ActionDTO
		if err := json.Unmarshal(body, &dto); err != nil {
			c.clientError(w, fmt.Errorf("decoding action: %w", err))
			return
		}
		dtos = append(dtos, dto)
	}
	if len(dtos) == 0 {
		c.clientError(w, fmt.Errorf("empty action batch"))
		return
	}
	batch := make([]logs.Action, 0, len(dtos))
	for i, dto := range dtos {
		a, err := dto.action()
		if err != nil {
			c.clientError(w, fmt.Errorf("action %d: %w", i, err))
			return
		}
		if grant != nil && !grant.AllowsPrincipal(a.Principal) {
			c.auth.AppendRejects.Add(1)
			writeJSON(w, http.StatusForbidden, map[string]string{
				"error": fmt.Sprintf("identity %q may not append as principal %q", grant.Name, a.Principal),
			})
			return
		}
		batch = append(batch, a)
	}
	if err := c.fleet.AppendActions(batch); err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(batch), "routed": true})
}

// serveLog mirrors Server.serveLog over the fleet runner.
func (c *Coordinator) serveLog(w http.ResponseWriter, q query.Query) {
	probe := q.Limit == 0
	if probe {
		q.Limit = 1
	}
	page, err := c.fleet.Run(q)
	switch {
	case errors.Is(err, query.ErrDenied):
		writeJSON(w, http.StatusForbidden, map[string]string{
			"error": fmt.Sprintf("principal %s does not disclose its log to %q", q.Principal, q.Observer),
		})
		return
	case err != nil:
		c.clientError(w, err)
		return
	}
	if probe {
		page.Records, page.Cursor = nil, ""
	}
	writeJSON(w, http.StatusOK, LogResponse{
		Principal: q.Principal,
		Observer:  q.Observer,
		Records:   recordDTOs(page.Records),
		Log:       query.SpineString(page.Records),
		Cursor:    page.Cursor,
	})
}

func (c *Coordinator) handleGlobalLog(w http.ResponseWriter, r *http.Request) {
	q, err := logQuery(r, "")
	if err != nil {
		c.clientError(w, err)
		return
	}
	if !c.coerceRead(w, r, &q.Observer) {
		return
	}
	c.serveLog(w, q)
}

func (c *Coordinator) handleShardLog(w http.ResponseWriter, r *http.Request) {
	q, err := logQuery(r, r.PathValue("principal"))
	if err != nil {
		c.clientError(w, err)
		return
	}
	if !c.coerceRead(w, r, &q.Observer) {
		return
	}
	c.serveLog(w, q)
}

// handleAudit routes the Definition-3 check to the one leader holding
// every record the claim's provenance can name. The verdict depends
// only on the relative order of the principals the provenance names
// (docs/security.md, "Audit locality"); when they all live on one
// partition, the owner's global log restricted to them is exactly the
// fleet's, and the proxied verdict is bit-identical to a single node's.
// An empty provenance denotes the empty log, correct against any store
// — answered locally. A provenance spanning partitions has no single
// log that justifies a verdict; it is refused with the split named, not
// guessed at.
func (c *Coordinator) handleAudit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		c.clientError(w, fmt.Errorf("reading body: %w", err))
		return
	}
	var req AuditRequest
	if err := json.Unmarshal(body, &req); err != nil {
		c.clientError(w, fmt.Errorf("decoding audit request: %w", err))
		return
	}
	if req.Value == "" {
		c.clientError(w, fmt.Errorf("audit needs a value"))
		return
	}
	if grant := grantFrom(r); grant != nil && !grant.CanRead() {
		c.auth.QueryRejects.Add(1)
		writeJSON(w, http.StatusForbidden, map[string]string{
			"error": fmt.Sprintf("identity %q lacks the read role", grant.Name),
		})
		return
	}
	k, err := provOf(req.Prov, 0)
	if err != nil {
		c.clientError(w, err)
		return
	}
	owners := c.fleet.AuditPrincipals(k)
	if len(k) == 0 {
		// ⟦V:ε⟧ = Nil ≼ φ for every φ: trivially correct, no leader needed.
		writeJSON(w, http.StatusOK, AuditResponse{Correct: true})
		return
	}
	if len(owners) > 1 {
		c.refusals.Add(1)
		parts := make([]string, 0, len(owners))
		for id, ps := range owners {
			parts = append(parts, fmt.Sprintf("%s(%s)", id, strings.Join(ps, ",")))
		}
		sort.Strings(parts)
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{
			"error": fmt.Sprintf("audit provenance spans %d partitions [%s]: no single leader holds the interleaving; audit each principal's events separately or repartition with overrides", len(owners), strings.Join(parts, " ")),
		})
		return
	}
	var ownerID string
	for id := range owners {
		ownerID = id
	}
	c.proxyAudit(w, ownerID, body)
}

// proxyAudit forwards the audit body to the owning leader's HTTP /audit
// and relays status and body verbatim — the bit-identical contract.
func (c *Coordinator) proxyAudit(w http.ResponseWriter, leaderID string, body []byte) {
	var base string
	for _, l := range c.fleet.Leaders() {
		if l.ID == leaderID {
			base = l.HTTP
		}
	}
	if base == "" {
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error": fmt.Sprintf("leader %q exposes no http endpoint in the partition map; audits need http= on every leader", leaderID),
		})
		return
	}
	req, err := http.NewRequest(http.MethodPost, strings.TrimRight(base, "/")+"/audit", bytes.NewReader(body))
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if c.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.Token)
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": fmt.Sprintf("leader %s: %v", leaderID, err)})
		return
	}
	defer resp.Body.Close()
	c.proxied.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleCompact names the right place to compact instead of pretending
// to: compaction is a per-leader store operation.
func (c *Coordinator) handleCompact(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusMisdirectedRequest, map[string]string{
		"error": "a coordinator holds no store; POST /compact to each partition leader",
	})
}

// handlePrincipals merges every leader's visible-principal census. Each
// leader applies its own disclosure policy before answering, so the
// merged list discloses exactly the union of what each leader would.
func (c *Coordinator) handlePrincipals(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query()
	observer := v.Get("observer")
	if !c.coerceRead(w, r, &observer) {
		return
	}
	merged, err := c.gatherPrincipals(observer)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	if v.Get("limit") == "" && v.Get("cursor") == "" {
		ps := make([]string, len(merged))
		for i, pc := range merged {
			ps[i] = pc.Principal
		}
		writeJSON(w, http.StatusOK, ps)
		return
	}
	limit, err := query.ParseLimit(v.Get("limit"))
	if err != nil {
		c.clientError(w, err)
		return
	}
	if limit == 0 {
		c.clientError(w, fmt.Errorf("principals pagination needs a positive limit"))
		return
	}
	if after, ok := decodePrincipalCursor(v.Get("cursor")); ok {
		i := sort.Search(len(merged), func(i int) bool { return merged[i].Principal > after })
		merged = merged[i:]
	} else if v.Get("cursor") != "" {
		c.clientError(w, fmt.Errorf("%w: unrecognised principals cursor", query.ErrBadCursor))
		return
	}
	resp := PrincipalsResponse{Principals: make([]PrincipalDTO, 0, min(limit, len(merged)))}
	for _, pc := range merged {
		if len(resp.Principals) >= limit {
			resp.Cursor = encodePrincipalCursor(resp.Principals[len(resp.Principals)-1].Principal)
			break
		}
		resp.Principals = append(resp.Principals, pc)
	}
	writeJSON(w, http.StatusOK, resp)
}

// gatherPrincipals scatters the paginated principal census to every
// leader's HTTP endpoint and merges the pages name-sorted. Ownership is
// disjoint, so the union has no duplicates to resolve.
func (c *Coordinator) gatherPrincipals(observer string) ([]PrincipalDTO, error) {
	var merged []PrincipalDTO
	for _, l := range c.fleet.Leaders() {
		if l.HTTP == "" {
			return nil, fmt.Errorf("leader %q exposes no http endpoint in the partition map", l.ID)
		}
		cursor := ""
		for {
			u := strings.TrimRight(l.HTTP, "/") + "/principals?limit=10000"
			if observer != "" {
				u += "&observer=" + url.QueryEscape(observer)
			}
			if cursor != "" {
				u += "&cursor=" + url.QueryEscape(cursor)
			}
			req, err := http.NewRequest(http.MethodGet, u, nil)
			if err != nil {
				return nil, err
			}
			if c.opts.Token != "" {
				req.Header.Set("Authorization", "Bearer "+c.opts.Token)
			}
			resp, err := c.opts.Client.Do(req)
			if err != nil {
				return nil, fmt.Errorf("leader %s: %w", l.ID, err)
			}
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				resp.Body.Close()
				return nil, fmt.Errorf("leader %s: principals returned %d: %s", l.ID, resp.StatusCode, strings.TrimSpace(string(b)))
			}
			var page PrincipalsResponse
			err = json.NewDecoder(resp.Body).Decode(&page)
			resp.Body.Close()
			if err != nil {
				return nil, fmt.Errorf("leader %s: decoding principals: %w", l.ID, err)
			}
			merged = append(merged, page.Principals...)
			if page.Cursor == "" {
				break
			}
			cursor = page.Cursor
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Principal < merged[j].Principal })
	return merged, nil
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := c.fleet.Map()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"role":     "coordinator",
		"epoch":    m.Epoch,
		"leaders":  len(m.Leaders),
		"uptime_s": time.Since(c.started).Seconds(),
	})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := c.fleet.Map()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "provd_http_requests_total %d\n", c.requests.Load())
	fmt.Fprintf(w, "provd_http_bad_requests_total %d\n", c.badReqs.Load())
	fmt.Fprintf(w, "provd_uptime_seconds %.3f\n", time.Since(c.started).Seconds())
	fmt.Fprintf(w, "provd_cluster_epoch %d\n", m.Epoch)
	fmt.Fprintf(w, "provd_cluster_leaders %d\n", len(m.Leaders))
	fmt.Fprintf(w, "provd_cluster_audit_proxies_total %d\n", c.proxied.Load())
	fmt.Fprintf(w, "provd_cluster_audit_refusals_total %d\n", c.refusals.Load())
	if c.ingest != nil {
		in := c.ingest.Stats()
		fmt.Fprintf(w, "provd_ingest_connections_total %d\n", in.Accepted)
		fmt.Fprintf(w, "provd_ingest_connections_active %d\n", in.Active)
		fmt.Fprintf(w, "provd_ingest_queries_total %d\n", in.Queries)
		fmt.Fprintf(w, "provd_ingest_query_records_total %d\n", in.QueryRecords)
		fmt.Fprintf(w, "provd_ingest_follows_total %d\n", in.Follows)
		fmt.Fprintf(w, "provd_ingest_query_rejects_total %d\n", in.QueryRejects)
	}
	if c.auth != nil {
		fmt.Fprintf(w, "provd_auth_conn_rejects_total %d\n", c.auth.ConnRejects.Load())
		fmt.Fprintf(w, "provd_auth_append_rejects_total %d\n", c.auth.AppendRejects.Load())
		fmt.Fprintf(w, "provd_auth_query_rejects_total %d\n", c.auth.QueryRejects.Load())
	}
}
