package provd

import (
	"fmt"

	"repro/internal/logs"
	"repro/internal/syntax"
	"repro/internal/wire"
)

// JSON wire types of the provd API. The binary codec (internal/wire) is
// what the store puts on disk; this is the operator-facing query surface.

// TermDTO is a log term: a plain name (default), a variable, or the
// unknown-channel symbol ?.
type TermDTO struct {
	Kind string `json:"kind,omitempty"` // "name" (default), "var", "unknown"
	Name string `json:"name,omitempty"`
}

// ActionDTO is one global-log action.
type ActionDTO struct {
	Principal string  `json:"principal"`
	Kind      string  `json:"kind"` // "snd", "rcv", "ift", "iff"
	A         TermDTO `json:"a"`
	B         TermDTO `json:"b"`
}

// RecordDTO is a stored record: an action plus its global sequence number.
type RecordDTO struct {
	Seq    uint64    `json:"seq"`
	Action ActionDTO `json:"action"`
}

// EventDTO is one provenance event a!κ / a?κ.
type EventDTO struct {
	Principal string     `json:"principal"`
	Dir       string     `json:"dir"` // "!" (send) or "?" (recv)
	ChanProv  []EventDTO `json:"chan_prov,omitempty"`
}

// AppendResponse acknowledges a durable append.
type AppendResponse struct {
	Seq uint64 `json:"seq"`
}

// BatchAppendResponse acknowledges a durable batch append: the batch's
// actions received the contiguous sequence numbers seq .. seq+count-1,
// in body order.
type BatchAppendResponse struct {
	Seq   uint64 `json:"seq"`
	Count int    `json:"count"`
}

// LogResponse serves a (possibly redacted) view of a stored log. A
// nonempty Cursor means the walk has more pages: pass it back as
// ?cursor= (with the same filters) to continue — backwards through
// older history for a default (tail) request, forward toward the
// snapshot for a ?from= walk.
type LogResponse struct {
	Principal string      `json:"principal,omitempty"`
	Observer  string      `json:"observer,omitempty"`
	Records   []RecordDTO `json:"records"`
	Log       string      `json:"log"`
	Cursor    string      `json:"cursor,omitempty"`
}

// PrincipalDTO is one shard in a paginated /principals response.
type PrincipalDTO struct {
	Principal string `json:"principal"`
	Records   int    `json:"records"`
}

// PrincipalsResponse is the paginated /principals shape (the
// unpaginated endpoint keeps its historical bare-array response).
type PrincipalsResponse struct {
	Principals []PrincipalDTO `json:"principals"`
	Cursor     string         `json:"cursor,omitempty"`
}

// AuditRequest asks for a Definition-3 correctness check of the claim
// V:κ against the stored global log. Value "?" stands for an unknown
// private channel.
type AuditRequest struct {
	Value    string     `json:"value"`
	Prov     []EventDTO `json:"prov"`
	Observer string     `json:"observer,omitempty"`
}

// AuditResponse is the audit verdict. When an observer is named,
// ProvView is the provenance as the observer is allowed to see it
// (disclosure-policy redaction applied at query time).
type AuditResponse struct {
	Correct  bool       `json:"correct"`
	Detail   string     `json:"detail,omitempty"`
	ProvView []EventDTO `json:"prov_view,omitempty"`
}

func termDTO(t logs.Term) TermDTO {
	switch t.Kind {
	case logs.TVar:
		return TermDTO{Kind: "var", Name: t.Name}
	case logs.TUnknown:
		return TermDTO{Kind: "unknown"}
	default:
		return TermDTO{Name: t.Name}
	}
}

func (t TermDTO) term() (logs.Term, error) {
	switch t.Kind {
	case "", "name":
		return logs.NameT(t.Name), nil
	case "var":
		return logs.VarT(t.Name), nil
	case "unknown":
		return logs.UnknownT(), nil
	default:
		return logs.Term{}, fmt.Errorf("unknown term kind %q", t.Kind)
	}
}

func actionDTO(a logs.Action) ActionDTO {
	return ActionDTO{Principal: a.Principal, Kind: a.Kind.String(), A: termDTO(a.A), B: termDTO(a.B)}
}

// kindOf maps the JSON action-kind token to its logs.ActKind; it is the
// single copy of this mapping, shared by the append path and the ?kind=
// shard filter.
func kindOf(s string) (logs.ActKind, error) {
	switch s {
	case "snd":
		return logs.Snd, nil
	case "rcv":
		return logs.Rcv, nil
	case "ift":
		return logs.IfT, nil
	case "iff":
		return logs.IfF, nil
	default:
		return 0, fmt.Errorf("unknown action kind %q", s)
	}
}

func (a ActionDTO) action() (logs.Action, error) {
	kind, err := kindOf(a.Kind)
	if err != nil {
		return logs.Action{}, err
	}
	if a.Principal == "" {
		return logs.Action{}, fmt.Errorf("action needs a principal")
	}
	ta, err := a.A.term()
	if err != nil {
		return logs.Action{}, err
	}
	tb, err := a.B.term()
	if err != nil {
		return logs.Action{}, err
	}
	return logs.Action{Principal: a.Principal, Kind: kind, A: ta, B: tb}, nil
}

func eventDTOs(k syntax.Prov) []EventDTO {
	if len(k) == 0 {
		return nil
	}
	out := make([]EventDTO, len(k))
	for i, e := range k {
		dir := "!"
		if e.Dir == syntax.Recv {
			dir = "?"
		}
		out[i] = EventDTO{Principal: e.Principal, Dir: dir, ChanProv: eventDTOs(e.ChanProv)}
	}
	return out
}

func provOf(dtos []EventDTO, depth int) (syntax.Prov, error) {
	if depth > wire.MaxProvDepth {
		return nil, fmt.Errorf("provenance nesting exceeds %d", wire.MaxProvDepth)
	}
	if len(dtos) == 0 {
		return nil, nil
	}
	if len(dtos) > wire.MaxProvLen {
		return nil, fmt.Errorf("provenance length exceeds %d", wire.MaxProvLen)
	}
	out := make(syntax.Prov, len(dtos))
	for i, d := range dtos {
		if d.Principal == "" {
			return nil, fmt.Errorf("event needs a principal")
		}
		var dir syntax.Dir
		switch d.Dir {
		case "!", "snd", "send", "out":
			dir = syntax.Send
		case "?", "rcv", "recv", "in":
			dir = syntax.Recv
		default:
			return nil, fmt.Errorf("unknown event direction %q", d.Dir)
		}
		inner, err := provOf(d.ChanProv, depth+1)
		if err != nil {
			return nil, err
		}
		out[i] = syntax.Event{Principal: d.Principal, Dir: dir, ChanProv: inner}
	}
	return out, nil
}
