package provd

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/logs"
	"repro/internal/provclient"
	"repro/internal/store"
)

// chainActs is one worker's relay chain aW -snd-> m -rcv-> sW -snd-> n
// -rcv-> cW amid noise — the same shape the HTTP batch e2e uses, so the
// two ingestion surfaces can be compared claim for claim.
func chainActs(wkr, b int) []logs.Action {
	a, s, c := fmt.Sprintf("a%d", wkr), fmt.Sprintf("s%d", wkr), fmt.Sprintf("c%d", wkr)
	v := fmt.Sprintf("v%d_%d", wkr, b)
	return []logs.Action{
		logs.SndAct(a, logs.NameT("m"), logs.NameT(v)),
		logs.RcvAct(s, logs.NameT("m"), logs.NameT(v)),
		logs.IftAct(a, logs.NameT(v), logs.NameT(v)),
		logs.SndAct(s, logs.NameT("n"), logs.NameT(v)),
		logs.RcvAct(c, logs.NameT("n"), logs.NameT(v)),
	}
}

func chainDTOs(wkr, b int) []ActionDTO {
	acts := chainActs(wkr, b)
	dtos := make([]ActionDTO, len(acts))
	for i, a := range acts {
		dtos[i] = actionDTO(a)
	}
	return dtos
}

// TestIngestEndToEndParity drives the same action stream through the
// HTTP/JSON batch path (into one store) and through concurrent
// pipelined binary clients (into another), with a mid-stream connection
// kill and a daemon restart on the binary side — and requires identical
// audit verdicts from the two stores.
func TestIngestEndToEndParity(t *testing.T) {
	const workers, batchesPer = 6, 10

	// HTTP/JSON reference store.
	stHTTP, err := store.Open(t.TempDir(), store.Options{SegmentBytes: 512, Stripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer stHTTP.Close()
	tsHTTP := httptest.NewServer(NewServer(stHTTP, nil))
	defer tsHTTP.Close()

	// Binary-ingest store, behind a drainable listener.
	binDir := t.TempDir()
	stBin, err := store.Open(binDir, store.Options{SegmentBytes: 512, Stripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	ing := ingest.NewServer(stBin, ingest.Options{})
	addr, err := ing.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2*workers+1)

	// Mid-stream kill: a connection that sends one good request, then
	// half a frame, then vanishes. The server must ack the good request
	// and shrug off the torn one without disturbing the real clients.
	wg.Add(1)
	go func() {
		defer wg.Done()
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			errs <- err
			return
		}
		killer := provclient.New(addr, provclient.Options{Conns: 1})
		if _, err := killer.AppendBatch(chainActs(0, batchesPer)); err != nil { // extra batch, counted below
			errs <- fmt.Errorf("killer append: %w", err)
		}
		killer.Close()
		nc.Write([]byte{0x40, 0x01, 0x02, 0x03}) // claims 64 bytes, delivers 3
		nc.Close()
	}()

	for wkr := 0; wkr < workers; wkr++ {
		// HTTP worker: sequential JSON batches.
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				var br BatchAppendResponse
				if code := postJSON(t, tsHTTP, "/append", chainDTOs(wkr, b), &br); code != http.StatusOK {
					errs <- fmt.Errorf("http worker %d batch %d: status %d", wkr, b, code)
					return
				}
			}
		}(wkr)
		// Binary worker: its own pooled pipelined client.
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			c := provclient.New(addr, provclient.Options{Conns: 2, FlushInterval: time.Millisecond})
			defer c.Close()
			for b := 0; b < batchesPer; b++ {
				if _, err := c.AppendBatch(chainActs(wkr, b)); err != nil {
					errs <- fmt.Errorf("binary worker %d batch %d: %w", wkr, b, err)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	wantBin := (workers*batchesPer + 1) * 5 // workers' chains + the killer's good batch
	if got := stBin.Len(); got != wantBin {
		t.Fatalf("binary store has %d records, want %d", got, wantBin)
	}

	// Restart the binary daemon: drain, close, recover from disk, serve
	// the recovered store over HTTP for the audit comparison — and keep
	// ingesting to prove the listener side survives too.
	ing.Close()
	if err := stBin.Close(); err != nil {
		t.Fatal(err)
	}
	stBin2, err := store.Open(binDir, store.Options{SegmentBytes: 512, Stripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer stBin2.Close()
	if got := stBin2.Len(); got != wantBin {
		t.Fatalf("recovered binary store has %d records, want %d", got, wantBin)
	}
	ing2 := ingest.NewServer(stBin2, ingest.Options{})
	addr2, err := ing2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ing2.Close()
	post := provclient.New(addr2, provclient.Options{})
	if _, err := post.AppendBatch(chainActs(workers, 0)); err != nil {
		t.Fatalf("append after restart: %v", err)
	}
	post.Close()
	// Mirror the post-restart batch on the HTTP side to keep the streams equal.
	var br BatchAppendResponse
	if code := postJSON(t, tsHTTP, "/append", chainDTOs(workers, 0), &br); code != http.StatusOK {
		t.Fatalf("http post-restart batch: status %d", code)
	}
	var extra BatchAppendResponse
	if code := postJSON(t, tsHTTP, "/append", chainDTOs(0, batchesPer), &extra); code != http.StatusOK {
		t.Fatalf("http killer-mirror batch: status %d", code)
	}

	// Audit parity: genuine chains audit correct, forgeries incorrect,
	// and the two stores agree on every claim.
	tsBin := httptest.NewServer(NewServer(stBin2, nil))
	defer tsBin.Close()
	for wkr := 0; wkr <= workers; wkr++ {
		a, s, c := fmt.Sprintf("a%d", wkr), fmt.Sprintf("s%d", wkr), fmt.Sprintf("c%d", wkr)
		claims := []AuditRequest{
			{Value: fmt.Sprintf("v%d_0", wkr), Prov: []EventDTO{
				{Principal: c, Dir: "?"}, {Principal: s, Dir: "!"},
				{Principal: s, Dir: "?"}, {Principal: a, Dir: "!"},
			}},
			{Value: fmt.Sprintf("v%d_0", wkr), Prov: []EventDTO{
				{Principal: c, Dir: "?"}, {Principal: "zz", Dir: "!"},
			}},
		}
		for i, claim := range claims {
			var viaHTTP, viaBin AuditResponse
			if code := postJSON(t, tsHTTP, "/audit", claim, &viaHTTP); code != http.StatusOK {
				t.Fatalf("http audit status %d", code)
			}
			if code := postJSON(t, tsBin, "/audit", claim, &viaBin); code != http.StatusOK {
				t.Fatalf("bin audit status %d", code)
			}
			if genuine := i == 0; viaHTTP.Correct != genuine {
				t.Fatalf("worker %d claim %d: http verdict %v, want %v (%s)", wkr, i, viaHTTP.Correct, genuine, viaHTTP.Detail)
			}
			if viaHTTP.Correct != viaBin.Correct {
				t.Fatalf("worker %d claim %d: verdicts diverge http=%v bin=%v (%s)",
					wkr, i, viaHTTP.Correct, viaBin.Correct, viaBin.Detail)
			}
		}
	}
}
