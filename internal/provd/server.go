// Package provd is the application layer of the provenance log daemon:
// the HTTP/JSON audit and query service over a store.Store, plus the
// glue that surfaces the binary ingest listener's counters. cmd/provd
// wires it to flags and signals; living here (rather than in the
// command) lets benchmarks and load generators drive the real handlers
// in process.
package provd

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/ingest"
	"repro/internal/logs"
	"repro/internal/query"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/trust"
	"repro/internal/wire"
)

// Server is the audit/query front end over a store.Store: every read
// endpoint is a thin adapter over the typed query engine
// (internal/query), which owns filtering, cursor pagination and
// disclosure redaction — the same engine the binary read path serves,
// so HTTP and binary observers see byte-identical decisions.
type Server struct {
	store   *store.Store
	policy  *trust.DisclosurePolicy
	engine  *query.Engine
	mux     *http.ServeMux
	started time.Time
	// ingest, when set, is the binary pipelined listener sharing the
	// store; its counters join /metrics so one scrape covers both
	// ingestion surfaces.
	ingest *ingest.Server
	// replica, when set, puts the server in replica mode (replica.go in
	// this package): reads serve locally, writes are refused toward the
	// leader, health and metrics carry role and lag.
	replica    *replica.Replicator
	leaderHTTP string
	// auth, when set, turns on identity enforcement (SetAuth): every
	// endpoint except /healthz and /metrics requires a resolved grant,
	// checked per operation exactly like the binary surface checks it.
	auth *auth.Guard
	// cluster, when set, makes this node one partition leader
	// (SetCluster): HTTP appends for principals it does not own are
	// refused with 421, mirroring the binary surface's per-request
	// "cluster:" reject — a principal's records must live on exactly
	// one leader or audit locality breaks.
	cluster ingest.ClusterView

	requests atomic.Uint64
	badReqs  atomic.Uint64
}

// NewServer wires the routes. A nil policy means full disclosure.
func NewServer(st *store.Store, policy *trust.DisclosurePolicy) *Server {
	if policy == nil {
		policy = trust.NewDisclosurePolicy()
	}
	s := &Server{store: st, policy: policy, engine: query.NewEngine(st, policy), mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("POST /append", s.handleAppend)
	s.mux.HandleFunc("GET /log", s.handleGlobalLog)
	s.mux.HandleFunc("GET /log/{principal}", s.handleShardLog)
	s.mux.HandleFunc("POST /audit", s.handleAudit)
	s.mux.HandleFunc("POST /compact", s.handleCompact)
	s.mux.HandleFunc("GET /principals", s.handlePrincipals)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// AttachIngest joins a binary ingest listener's counters to /metrics,
// so one scrape covers both ingestion surfaces.
func (s *Server) AttachIngest(in *ingest.Server) { s.ingest = in }

// Engine exposes the server's query engine so the binary read path can
// share it (ingest.Options.Engine): one engine, one set of
// redaction/denial counters, whichever surface served the read.
func (s *Server) Engine() *query.Engine { return s.engine }

// SetAuth turns on identity enforcement. Pass the same Guard as
// ingest.Options.Auth so both surfaces share one identity map and one
// set of provd_auth_* rejection counters.
func (s *Server) SetAuth(g *auth.Guard) { s.auth = g }

// SetCluster marks this node a partition leader. Pass the same view as
// ingest.Options.Cluster so both write surfaces enforce one ownership
// decision.
func (s *Server) SetCluster(cv ingest.ClusterView) { s.cluster = cv }

// forbidNotOwned writes the 421 for an append naming a principal this
// leader does not own under the current map epoch.
func (s *Server) forbidNotOwned(w http.ResponseWriter, principal string) bool {
	if s.cluster == nil || s.cluster.Owns(principal) {
		return false
	}
	s.writeJSON(w, http.StatusMisdirectedRequest, map[string]string{
		"error": fmt.Sprintf("cluster: not owner of principal %q at epoch %d: refetch the map and re-route", principal, s.cluster.Epoch()),
	})
	return true
}

// grantKey stashes the request's resolved grant in its context.
type grantKey struct{}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.auth != nil && r.URL.Path != "/healthz" && r.URL.Path != "/metrics" {
		// Health and metrics stay open — probes and scrapers carry no
		// identity, and neither endpoint discloses log content.
		grant := s.resolveGrant(r)
		if grant == nil {
			s.auth.ConnRejects.Add(1)
			s.writeJSON(w, http.StatusUnauthorized, map[string]string{
				"error": "no known identity: present a client certificate or bearer token",
			})
			return
		}
		r = r.WithContext(context.WithValue(r.Context(), grantKey{}, grant))
	}
	s.mux.ServeHTTP(w, r)
}

// resolveGrant maps the request to an identity: the verified client
// certificate first (the mTLS shape), then an Authorization bearer
// token against the auth map's token table (the dev shape). Nil if
// neither names a known identity.
func (s *Server) resolveGrant(r *http.Request) *auth.Grant {
	return resolveGrant(s.auth, r)
}

// grantFrom recovers the grant ServeHTTP resolved (nil when
// enforcement is off).
func grantFrom(r *http.Request) *auth.Grant {
	g, _ := r.Context().Value(grantKey{}).(*auth.Grant)
	return g
}

// forbidRole writes the 403 for an operation the grant's roles do not
// cover, bumping the given rejection counter.
func (s *Server) forbidRole(w http.ResponseWriter, ctr *atomic.Uint64, grant *auth.Grant, role string) {
	ctr.Add(1)
	s.writeJSON(w, http.StatusForbidden, map[string]string{
		"error": fmt.Sprintf("identity %q lacks the %s role", grant.Name, role),
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	writeJSON(w, code, v)
}

func (s *Server) clientError(w http.ResponseWriter, err error) {
	s.badReqs.Add(1)
	s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

const maxBodyBytes = 1 << 20

// handleAppend durably appends one action — or, when the body is a JSON
// array, a whole batch in one store lock round — and returns the
// assigned sequence number(s). This is the ingestion path for
// middlewares that are not in-process (an in-process runtime.Net uses
// the sink hook directly); a remote mirror draining its own async
// pipeline should post batches, matching the store's AppendBatch fast
// path.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if s.replica != nil {
		s.rejectWrite(w, r)
		return
	}
	grant := grantFrom(r)
	if grant != nil && !grant.CanAppend() {
		s.forbidRole(w, &s.auth.AppendRejects, grant, "append")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.clientError(w, fmt.Errorf("reading body: %w", err))
		return
	}
	if t := bytes.TrimLeft(body, " \t\r\n"); len(t) > 0 && t[0] == '[' {
		s.appendBatch(w, grant, t)
		return
	}
	var dto ActionDTO
	if err := json.Unmarshal(body, &dto); err != nil {
		s.clientError(w, fmt.Errorf("decoding action: %w", err))
		return
	}
	a, err := dto.action()
	if err != nil {
		s.clientError(w, err)
		return
	}
	if grant != nil && !grant.AllowsPrincipal(a.Principal) {
		s.forbidPrincipal(w, grant, a.Principal)
		return
	}
	if s.forbidNotOwned(w, a.Principal) {
		return
	}
	seq, err := s.store.Append(a)
	if err != nil {
		s.appendError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, AppendResponse{Seq: seq})
}

// forbidPrincipal writes the 403 for a batch claiming a principal
// outside the grant.
func (s *Server) forbidPrincipal(w http.ResponseWriter, grant *auth.Grant, principal string) {
	s.auth.AppendRejects.Add(1)
	s.writeJSON(w, http.StatusForbidden, map[string]string{
		"error": fmt.Sprintf("identity %q may not append as principal %q", grant.Name, principal),
	})
}

// appendBatch is the batch arm of /append: all actions are appended in
// body order under one lock round and receive a contiguous block of
// sequence numbers starting at the returned seq. The whole batch must
// be within the grant's principal set — rejecting it entire keeps the
// "error means none appended" contract the binary surface gives.
func (s *Server) appendBatch(w http.ResponseWriter, grant *auth.Grant, body []byte) {
	var dtos []ActionDTO
	if err := json.Unmarshal(body, &dtos); err != nil {
		s.clientError(w, fmt.Errorf("decoding action batch: %w", err))
		return
	}
	if len(dtos) == 0 {
		s.clientError(w, fmt.Errorf("empty action batch"))
		return
	}
	acts := make([]logs.Action, len(dtos))
	for i, dto := range dtos {
		a, err := dto.action()
		if err != nil {
			s.clientError(w, fmt.Errorf("action %d: %w", i, err))
			return
		}
		if grant != nil && !grant.AllowsPrincipal(a.Principal) {
			s.forbidPrincipal(w, grant, a.Principal)
			return
		}
		if s.forbidNotOwned(w, a.Principal) {
			return
		}
		acts[i] = a
	}
	base, err := s.store.AppendBatch(acts)
	if err != nil {
		s.appendError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, BatchAppendResponse{Seq: base, Count: len(acts)})
}

// appendError maps a store append failure to its HTTP status.
func (s *Server) appendError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, store.ErrInvalidAction):
		s.clientError(w, err)
	case errors.Is(err, store.ErrShardLimit):
		s.writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	default:
		s.writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

// recordDTOs converts an engine page (already redacted for its
// observer) to the JSON shape.
func recordDTOs(recs []wire.Record) []RecordDTO {
	dtos := make([]RecordDTO, len(recs))
	for i, r := range recs {
		dtos[i] = RecordDTO{Seq: r.Seq, Action: actionDTO(r.Act)}
	}
	return dtos
}

// logQuery assembles the engine query shared by /log and
// /log/{principal} from the URL: ?observer=, ?limit= (page size,
// default 10000), ?cursor= (resume a walk), ?chan= / ?kind= (index
// filters), ?from= (ascending walk from a sequence number; without it
// the page is the most recent records, whose cursor pages backwards
// through history).
func logQuery(r *http.Request, principal string) (query.Query, error) {
	v := r.URL.Query()
	limit, err := query.ParseLimit(v.Get("limit"))
	if err != nil {
		return query.Query{}, err
	}
	q := query.Query{
		Principal: principal,
		Observer:  v.Get("observer"),
		Channel:   v.Get("chan"),
		Limit:     limit,
		Cursor:    v.Get("cursor"),
		Tail:      true,
	}
	if k := v.Get("kind"); k != "" {
		kind, err := kindOf(k)
		if err != nil {
			return query.Query{}, err
		}
		q.Kind, q.KindSet = kind, true
	}
	if from := v.Get("from"); from != "" {
		q.Tail = false
		seq, err := strconv.ParseUint(from, 10, 64)
		if err != nil {
			return query.Query{}, fmt.Errorf("invalid from %q", from)
		}
		q.MinSeq = seq
	}
	return q, nil
}

// serveLog runs the query and writes the LogResponse; the error mapping
// (denied shard → 403, bad cursor/query → 400) is shared by both log
// endpoints.
func (s *Server) serveLog(w http.ResponseWriter, q query.Query) {
	// An explicit ?limit=0 is a probe: run a minimal query (so denial
	// and cursor validation still apply) but serve no records.
	probe := q.Limit == 0
	if probe {
		q.Limit = 1
	}
	page, err := s.engine.Run(q)
	switch {
	case errors.Is(err, query.ErrDenied):
		s.writeJSON(w, http.StatusForbidden, map[string]string{
			"error": fmt.Sprintf("principal %s does not disclose its log to %q", q.Principal, q.Observer),
		})
		return
	case err != nil:
		s.clientError(w, err)
		return
	}
	if probe {
		page.Records, page.Cursor = nil, ""
	}
	s.writeJSON(w, http.StatusOK, LogResponse{
		Principal: q.Principal,
		Observer:  q.Observer,
		Records:   recordDTOs(page.Records),
		Log:       query.SpineString(page.Records),
		Cursor:    page.Cursor,
	})
}

// handleGlobalLog serves the recovered monitor log through the query
// engine: redacted for ?observer=, filtered by ?chan=/?kind=, paginated
// by ?limit= and ?cursor= (?from= walks forward instead).
func (s *Server) handleGlobalLog(w http.ResponseWriter, r *http.Request) {
	q, err := logQuery(r, "")
	if err != nil {
		s.clientError(w, err)
		return
	}
	if !s.coerceRead(w, r, &q.Observer) {
		return
	}
	s.serveLog(w, q)
}

// coerceRead gates a read on the grant's read role and pins its
// observer to the grant — whatever view the caller asked for (including
// the full, unredacted "" view), it reads as the observer its identity
// maps to; replica-role grants pass through. Reports whether the read
// may proceed.
func (s *Server) coerceRead(w http.ResponseWriter, r *http.Request, observer *string) bool {
	grant := grantFrom(r)
	if grant == nil {
		return true
	}
	if !grant.CanRead() {
		s.forbidRole(w, &s.auth.QueryRejects, grant, "read")
		return false
	}
	*observer = grant.CoerceObserver(*observer)
	return true
}

// handleShardLog serves one principal's shard through the query engine.
// A shard query is keyed by the acting principal, so masking the
// records would still disclose who acted: the engine denies the whole
// shard to observers the principal hides from.
func (s *Server) handleShardLog(w http.ResponseWriter, r *http.Request) {
	q, err := logQuery(r, r.PathValue("principal"))
	if err != nil {
		s.clientError(w, err)
		return
	}
	if !s.coerceRead(w, r, &q.Observer) {
		return
	}
	s.serveLog(w, q)
}

// handleAudit runs the server-side Definition-3 correctness check: does
// the stored global log justify the claim V:κ? The provenance echoed
// back is the observer's redacted view.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	var req AuditRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.clientError(w, fmt.Errorf("decoding audit request: %w", err))
		return
	}
	if req.Value == "" {
		s.clientError(w, fmt.Errorf("audit needs a value"))
		return
	}
	if grant := grantFrom(r); grant != nil {
		if !grant.CanRead() {
			s.forbidRole(w, &s.auth.QueryRejects, grant, "read")
			return
		}
		// An empty observer asks for no provenance echo at all — nothing
		// to coerce; a named one is pinned to the grant's view.
		if req.Observer != "" {
			req.Observer = grant.CoerceObserver(req.Observer)
		}
	}
	k, err := provOf(req.Prov, 0)
	if err != nil {
		s.clientError(w, err)
		return
	}
	term := logs.NameT(req.Value)
	if req.Value == "?" {
		term = logs.UnknownT()
	}
	resp := AuditResponse{Correct: true}
	if err := s.engine.AuditTerm(term, k); err != nil {
		resp.Correct = false
		resp.Detail = err.Error()
	}
	if req.Observer != "" {
		resp.ProvView = eventDTOs(s.engine.ViewProv(k, req.Observer))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleCompact compacts one shard (?principal=name) or all shards.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if s.replica != nil {
		// Compaction rewrites segments; on a replica the Replicator is
		// the store's only writer, so route it to the leader too.
		s.rejectWrite(w, r)
		return
	}
	if grant := grantFrom(r); grant != nil && !grant.CanAppend() {
		// Compaction rewrites the log: a write-class operation.
		s.forbidRole(w, &s.auth.AppendRejects, grant, "append")
		return
	}
	principal := r.URL.Query().Get("principal")
	var err error
	if principal == "" {
		err = s.store.CompactAll()
	} else {
		err = s.store.Compact(principal)
	}
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handlePrincipals lists known shards through the engine's counts
// snapshot, omitting principals that hide from the requesting
// observer — the same existence fact the shard endpoint's 403
// protects. Without pagination parameters the response is the
// historical bare JSON array; ?limit= (or ?cursor=) switches to a
// paginated object carrying per-principal record counts and a resume
// cursor.
func (s *Server) handlePrincipals(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query()
	observer := v.Get("observer")
	if !s.coerceRead(w, r, &observer) {
		return
	}
	visible := s.engine.VisibleCounts(observer).Principals
	if v.Get("limit") == "" && v.Get("cursor") == "" {
		ps := make([]string, len(visible))
		for i, pc := range visible {
			ps[i] = pc.Principal
		}
		s.writeJSON(w, http.StatusOK, ps)
		return
	}
	limit, err := query.ParseLimit(v.Get("limit"))
	if err != nil {
		s.clientError(w, err)
		return
	}
	if limit == 0 {
		// Unlike /log (where limit=0 is a historical probe), principal
		// pagination is new: an empty page with no cursor would be
		// indistinguishable from an exhausted walk, so refuse it.
		s.clientError(w, fmt.Errorf("principals pagination needs a positive limit"))
		return
	}
	if after, ok := decodePrincipalCursor(v.Get("cursor")); ok {
		i := sort.Search(len(visible), func(i int) bool { return visible[i].Principal > after })
		visible = visible[i:]
	} else if v.Get("cursor") != "" {
		s.clientError(w, fmt.Errorf("%w: unrecognised principals cursor", query.ErrBadCursor))
		return
	}
	resp := PrincipalsResponse{Principals: make([]PrincipalDTO, 0, min(limit, len(visible)))}
	for _, pc := range visible {
		if len(resp.Principals) >= limit {
			if len(resp.Principals) > 0 {
				resp.Cursor = encodePrincipalCursor(resp.Principals[len(resp.Principals)-1].Principal)
			}
			break
		}
		resp.Principals = append(resp.Principals, PrincipalDTO{Principal: pc.Principal, Records: pc.Records})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// Principal-list cursors: the list is name-sorted, so "after this name"
// is a stable resume point no record walk is needed for.
func encodePrincipalCursor(name string) string {
	return base64.RawURLEncoding.EncodeToString([]byte("p1." + name))
}

func decodePrincipalCursor(s string) (string, bool) {
	if s == "" {
		return "", false
	}
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil || !strings.HasPrefix(string(b), "p1.") {
		return "", false
	}
	return string(b[3:]), true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := map[string]any{
		"status":   "ok",
		"role":     "leader",
		"next_seq": s.store.NextSeq(),
		"uptime_s": time.Since(s.started).Seconds(),
	}
	if s.replica != nil {
		s.replicaHealth(h)
	}
	s.writeJSON(w, http.StatusOK, h)
}

// handleMetrics exposes store, engine and server counters in the
// conventional one-gauge-per-line text form. Store sizes come from the
// engine's lock-free Counts snapshot, so scraping never touches the
// append path's stripe locks.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.store.Stats()
	qs := s.engine.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "provd_http_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(w, "provd_http_bad_requests_total %d\n", s.badReqs.Load())
	fmt.Fprintf(w, "provd_redactions_total %d\n", qs.Redactions+qs.Denials)
	fmt.Fprintf(w, "provd_query_pages_total %d\n", qs.Queries)
	fmt.Fprintf(w, "provd_query_records_total %d\n", qs.Records)
	fmt.Fprintf(w, "provd_query_denials_total %d\n", qs.Denials)
	fmt.Fprintf(w, "provd_query_bad_cursors_total %d\n", qs.BadCursors)
	fmt.Fprintf(w, "provd_uptime_seconds %.3f\n", time.Since(s.started).Seconds())
	fmt.Fprintf(w, "provd_store_appends_total %d\n", st.Appends)
	fmt.Fprintf(w, "provd_store_batch_appends_total %d\n", st.BatchAppends)
	fmt.Fprintf(w, "provd_store_appended_bytes_total %d\n", st.AppendedBytes)
	fmt.Fprintf(w, "provd_store_rotations_total %d\n", st.Rotations)
	fmt.Fprintf(w, "provd_store_compactions_total %d\n", st.Compactions)
	fmt.Fprintf(w, "provd_store_audits_total %d\n", st.Audits)
	fmt.Fprintf(w, "provd_store_audit_failures_total %d\n", st.AuditFailures)
	fmt.Fprintf(w, "provd_store_recovered_records_total %d\n", st.RecoveredRecords)
	fmt.Fprintf(w, "provd_store_truncated_bytes_total %d\n", st.TruncatedBytes)
	fmt.Fprintf(w, "provd_store_shard_cap_rejects_total %d\n", st.ShardCapRejects)
	fmt.Fprintf(w, "provd_store_principals %d\n", st.Principals)
	fmt.Fprintf(w, "provd_store_records %d\n", st.Records)
	fmt.Fprintf(w, "provd_store_sessions %d\n", st.Sessions)
	fmt.Fprintf(w, "provd_store_session_entries %d\n", st.SessionEntries)
	fmt.Fprintf(w, "provd_store_session_compactions_total %d\n", st.SessionCompactions)
	fmt.Fprintf(w, "provd_store_sessions_evicted_total %d\n", st.SessionsEvicted)
	fmt.Fprintf(w, "provd_store_next_seq %d\n", st.NextSeq)
	if s.ingest != nil {
		in := s.ingest.Stats()
		fmt.Fprintf(w, "provd_ingest_connections_total %d\n", in.Accepted)
		fmt.Fprintf(w, "provd_ingest_connections_active %d\n", in.Active)
		fmt.Fprintf(w, "provd_ingest_requests_total %d\n", in.Requests)
		fmt.Fprintf(w, "provd_ingest_records_total %d\n", in.Records)
		fmt.Fprintf(w, "provd_ingest_commits_total %d\n", in.Commits)
		fmt.Fprintf(w, "provd_ingest_rejects_total %d\n", in.Rejects)
		fmt.Fprintf(w, "provd_ingest_conn_failures_total %d\n", in.ConnFails)
		fmt.Fprintf(w, "provd_ingest_sessions_total %d\n", in.Sessions)
		fmt.Fprintf(w, "provd_ingest_dedup_replays_total %d\n", in.DedupReplays)
		fmt.Fprintf(w, "provd_ingest_dedup_records_total %d\n", in.DedupRecords)
		fmt.Fprintf(w, "provd_ingest_dedup_evicted_total %d\n", in.DedupEvicted)
		fmt.Fprintf(w, "provd_ingest_dedup_checkpoint_failures_total %d\n", in.CheckpointFails)
		fmt.Fprintf(w, "provd_ingest_queries_total %d\n", in.Queries)
		fmt.Fprintf(w, "provd_ingest_query_records_total %d\n", in.QueryRecords)
		fmt.Fprintf(w, "provd_ingest_follows_total %d\n", in.Follows)
		fmt.Fprintf(w, "provd_ingest_query_rejects_total %d\n", in.QueryRejects)
		fmt.Fprintf(w, "provd_ingest_snapshots_total %d\n", in.Snapshots)
		fmt.Fprintf(w, "provd_ingest_snapshot_records_total %d\n", in.SnapshotRecords)
		fmt.Fprintf(w, "provd_ingest_parked_conns %d\n", in.Parked)
		fmt.Fprintf(w, "provd_ingest_parks_total %d\n", in.Parks)
		fmt.Fprintf(w, "provd_ingest_wakes_total %d\n", in.Wakes)
	}
	ps := wire.PoolStats()
	fmt.Fprintf(w, "provd_wire_pool_hits_total %d\n", ps.Hits)
	fmt.Fprintf(w, "provd_wire_pool_misses_total %d\n", ps.Misses)
	fmt.Fprintf(w, "provd_wire_pool_returns_total %d\n", ps.Returns)
	if s.auth != nil {
		fmt.Fprintf(w, "provd_auth_conn_rejects_total %d\n", s.auth.ConnRejects.Load())
		fmt.Fprintf(w, "provd_auth_append_rejects_total %d\n", s.auth.AppendRejects.Load())
		fmt.Fprintf(w, "provd_auth_query_rejects_total %d\n", s.auth.QueryRejects.Load())
		fmt.Fprintf(w, "provd_auth_snapshot_rejects_total %d\n", s.auth.SnapshotRejects.Load())
	}
	if s.replica != nil {
		s.replicaMetrics(w)
	}
}
