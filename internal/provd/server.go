// Package provd is the application layer of the provenance log daemon:
// the HTTP/JSON audit and query service over a store.Store, plus the
// glue that surfaces the binary ingest listener's counters. cmd/provd
// wires it to flags and signals; living here (rather than in the
// command) lets benchmarks and load generators drive the real handlers
// in process.
package provd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/logs"
	"repro/internal/store"
	"repro/internal/trust"
	"repro/internal/wire"
)

// Server is the audit/query front end over a store.Store, following the
// layered app/engine split: the store is the engine, this type is the
// HTTP application layer. All provenance disclosure decisions are made
// here, at query time, against the requesting observer.
type Server struct {
	store   *store.Store
	policy  *trust.DisclosurePolicy
	mux     *http.ServeMux
	started time.Time
	// ingest, when set, is the binary pipelined listener sharing the
	// store; its counters join /metrics so one scrape covers both
	// ingestion surfaces.
	ingest *ingest.Server

	requests   atomic.Uint64
	badReqs    atomic.Uint64
	redactions atomic.Uint64
}

// NewServer wires the routes. A nil policy means full disclosure.
func NewServer(st *store.Store, policy *trust.DisclosurePolicy) *Server {
	if policy == nil {
		policy = trust.NewDisclosurePolicy()
	}
	s := &Server{store: st, policy: policy, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("POST /append", s.handleAppend)
	s.mux.HandleFunc("GET /log", s.handleGlobalLog)
	s.mux.HandleFunc("GET /log/{principal}", s.handleShardLog)
	s.mux.HandleFunc("POST /audit", s.handleAudit)
	s.mux.HandleFunc("POST /compact", s.handleCompact)
	s.mux.HandleFunc("GET /principals", s.handlePrincipals)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// AttachIngest joins a binary ingest listener's counters to /metrics,
// so one scrape covers both ingestion surfaces.
func (s *Server) AttachIngest(in *ingest.Server) { s.ingest = in }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) clientError(w http.ResponseWriter, err error) {
	s.badReqs.Add(1)
	s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

const maxBodyBytes = 1 << 20

// handleAppend durably appends one action — or, when the body is a JSON
// array, a whole batch in one store lock round — and returns the
// assigned sequence number(s). This is the ingestion path for
// middlewares that are not in-process (an in-process runtime.Net uses
// the sink hook directly); a remote mirror draining its own async
// pipeline should post batches, matching the store's AppendBatch fast
// path.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.clientError(w, fmt.Errorf("reading body: %w", err))
		return
	}
	if t := bytes.TrimLeft(body, " \t\r\n"); len(t) > 0 && t[0] == '[' {
		s.appendBatch(w, t)
		return
	}
	var dto ActionDTO
	if err := json.Unmarshal(body, &dto); err != nil {
		s.clientError(w, fmt.Errorf("decoding action: %w", err))
		return
	}
	a, err := dto.action()
	if err != nil {
		s.clientError(w, err)
		return
	}
	seq, err := s.store.Append(a)
	if err != nil {
		s.appendError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, AppendResponse{Seq: seq})
}

// appendBatch is the batch arm of /append: all actions are appended in
// body order under one lock round and receive a contiguous block of
// sequence numbers starting at the returned seq.
func (s *Server) appendBatch(w http.ResponseWriter, body []byte) {
	var dtos []ActionDTO
	if err := json.Unmarshal(body, &dtos); err != nil {
		s.clientError(w, fmt.Errorf("decoding action batch: %w", err))
		return
	}
	if len(dtos) == 0 {
		s.clientError(w, fmt.Errorf("empty action batch"))
		return
	}
	acts := make([]logs.Action, len(dtos))
	for i, dto := range dtos {
		a, err := dto.action()
		if err != nil {
			s.clientError(w, fmt.Errorf("action %d: %w", i, err))
			return
		}
		acts[i] = a
	}
	base, err := s.store.AppendBatch(acts)
	if err != nil {
		s.appendError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, BatchAppendResponse{Seq: base, Count: len(acts)})
}

// appendError maps a store append failure to its HTTP status.
func (s *Server) appendError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, store.ErrInvalidAction):
		s.clientError(w, err)
	case errors.Is(err, store.ErrShardLimit):
		s.writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	default:
		s.writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

// viewRecords applies the disclosure policy once per record, returning
// both the DTO batch and the redacted actions (oldest first). Redaction
// happens on the decoded records, before any DTO conversion, so there is
// no re-parse step that could silently serve an unmasked action.
func (s *Server) viewRecords(recs []wire.Record, observer string) ([]RecordDTO, []logs.Action) {
	dtos := make([]RecordDTO, len(recs))
	acts := make([]logs.Action, len(recs))
	for i, r := range recs {
		viewed := s.policy.ViewAction(r.Act, observer)
		if viewed.Principal != r.Act.Principal {
			s.redactions.Add(1)
		}
		dtos[i] = RecordDTO{Seq: r.Seq, Action: actionDTO(viewed)}
		acts[i] = viewed
	}
	return dtos, acts
}

// renderSpine renders the log spine of a record batch (actions oldest
// first) with the most recent action leading, matching logs.Log.String()
// output for linear logs — but in linear time and constant stack, which
// the recursive stringifier cannot promise on a multi-million-record
// recovered log.
func renderSpine(acts []logs.Action) string {
	if len(acts) == 0 {
		return "0"
	}
	var b strings.Builder
	for i := len(acts) - 1; i >= 0; i-- {
		if i != len(acts)-1 {
			b.WriteString("; ")
		}
		b.WriteString(acts[i].String())
	}
	return b.String()
}

// defaultLogLimit caps /log responses when the client names no limit:
// materialising a multi-million-record store (records, DTOs, rendered
// spine) for one request would let a single GET exhaust the heap. An
// explicit ?limit=N is honoured as given.
const defaultLogLimit = 10000

// parseLimit reads the ?limit=N query parameter — the N most recent
// records — defaulting when absent.
func parseLimit(q string) (int, error) {
	if q == "" {
		return defaultLogLimit, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid limit %q", q)
	}
	return n, nil
}

// handleGlobalLog serves the recovered monitor log, redacted for the
// requesting observer (?observer=name); ?limit=N returns the N most
// recent records.
func (s *Server) handleGlobalLog(w http.ResponseWriter, r *http.Request) {
	observer := r.URL.Query().Get("observer")
	limit, err := parseLimit(r.URL.Query().Get("limit"))
	if err != nil {
		s.clientError(w, err)
		return
	}
	dtos, acts := s.viewRecords(s.store.TailRecords(limit), observer)
	s.writeJSON(w, http.StatusOK, LogResponse{
		Observer: observer,
		Records:  dtos,
		Log:      renderSpine(acts),
	})
}

// handleShardLog serves one principal's shard, redacted for the
// requesting observer. Optional filters: ?chan=name, ?kind=snd|rcv|ift|iff
// (served from the shard indexes).
func (s *Server) handleShardLog(w http.ResponseWriter, r *http.Request) {
	principal := r.PathValue("principal")
	observer := r.URL.Query().Get("observer")
	// A shard query is keyed by the acting principal, so masking the
	// records would still disclose who acted: deny the whole shard to
	// observers the principal hides from.
	if s.policy.Hides(principal, observer) {
		s.redactions.Add(1)
		s.writeJSON(w, http.StatusForbidden, map[string]string{
			"error": fmt.Sprintf("principal %s does not disclose its log to %q", principal, observer),
		})
		return
	}
	q := r.URL.Query()
	limit, err := parseLimit(q.Get("limit"))
	if err != nil {
		s.clientError(w, err)
		return
	}
	var recs []wire.Record
	switch {
	case q.Get("chan") != "":
		recs = s.store.ByChannelTail(principal, q.Get("chan"), limit)
	case q.Get("kind") != "":
		kind, err := kindOf(q.Get("kind"))
		if err != nil {
			s.clientError(w, err)
			return
		}
		recs = s.store.ByKindTail(principal, kind, limit)
	default:
		recs = s.store.RecordsTail(principal, limit)
	}
	dtos, acts := s.viewRecords(recs, observer)
	s.writeJSON(w, http.StatusOK, LogResponse{
		Principal: principal,
		Observer:  observer,
		Records:   dtos,
		Log:       renderSpine(acts),
	})
}

// handleAudit runs the server-side Definition-3 correctness check: does
// the stored global log justify the claim V:κ? The provenance echoed
// back is the observer's redacted view.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	var req AuditRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.clientError(w, fmt.Errorf("decoding audit request: %w", err))
		return
	}
	if req.Value == "" {
		s.clientError(w, fmt.Errorf("audit needs a value"))
		return
	}
	k, err := provOf(req.Prov, 0)
	if err != nil {
		s.clientError(w, err)
		return
	}
	term := logs.NameT(req.Value)
	if req.Value == "?" {
		term = logs.UnknownT()
	}
	resp := AuditResponse{Correct: true}
	if err := s.store.AuditTerm(term, k); err != nil {
		resp.Correct = false
		resp.Detail = err.Error()
	}
	if req.Observer != "" {
		if n := s.policy.RedactionCount(k, req.Observer); n > 0 {
			s.redactions.Add(uint64(n))
		}
		resp.ProvView = eventDTOs(s.policy.View(k, req.Observer))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleCompact compacts one shard (?principal=name) or all shards.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	principal := r.URL.Query().Get("principal")
	var err error
	if principal == "" {
		err = s.store.CompactAll()
	} else {
		err = s.store.Compact(principal)
	}
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handlePrincipals lists known shards, omitting principals that hide
// from the requesting observer — the same existence fact the shard
// endpoint's 403 protects.
func (s *Server) handlePrincipals(w http.ResponseWriter, r *http.Request) {
	observer := r.URL.Query().Get("observer")
	ps := []string{}
	for _, p := range s.store.Principals() {
		if s.policy.Hides(p, observer) {
			s.redactions.Add(1)
			continue
		}
		ps = append(ps, p)
	}
	s.writeJSON(w, http.StatusOK, ps)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"next_seq": s.store.NextSeq(),
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

// handleMetrics exposes store and server counters in the conventional
// one-gauge-per-line text form.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.store.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "provd_http_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(w, "provd_http_bad_requests_total %d\n", s.badReqs.Load())
	fmt.Fprintf(w, "provd_redactions_total %d\n", s.redactions.Load())
	fmt.Fprintf(w, "provd_uptime_seconds %.3f\n", time.Since(s.started).Seconds())
	fmt.Fprintf(w, "provd_store_appends_total %d\n", st.Appends)
	fmt.Fprintf(w, "provd_store_batch_appends_total %d\n", st.BatchAppends)
	fmt.Fprintf(w, "provd_store_appended_bytes_total %d\n", st.AppendedBytes)
	fmt.Fprintf(w, "provd_store_rotations_total %d\n", st.Rotations)
	fmt.Fprintf(w, "provd_store_compactions_total %d\n", st.Compactions)
	fmt.Fprintf(w, "provd_store_audits_total %d\n", st.Audits)
	fmt.Fprintf(w, "provd_store_audit_failures_total %d\n", st.AuditFailures)
	fmt.Fprintf(w, "provd_store_recovered_records_total %d\n", st.RecoveredRecords)
	fmt.Fprintf(w, "provd_store_truncated_bytes_total %d\n", st.TruncatedBytes)
	fmt.Fprintf(w, "provd_store_principals %d\n", st.Principals)
	fmt.Fprintf(w, "provd_store_records %d\n", st.Records)
	fmt.Fprintf(w, "provd_store_sessions %d\n", st.Sessions)
	fmt.Fprintf(w, "provd_store_session_entries %d\n", st.SessionEntries)
	fmt.Fprintf(w, "provd_store_session_compactions_total %d\n", st.SessionCompactions)
	fmt.Fprintf(w, "provd_store_sessions_evicted_total %d\n", st.SessionsEvicted)
	fmt.Fprintf(w, "provd_store_next_seq %d\n", st.NextSeq)
	if s.ingest != nil {
		in := s.ingest.Stats()
		fmt.Fprintf(w, "provd_ingest_connections_total %d\n", in.Accepted)
		fmt.Fprintf(w, "provd_ingest_connections_active %d\n", in.Active)
		fmt.Fprintf(w, "provd_ingest_requests_total %d\n", in.Requests)
		fmt.Fprintf(w, "provd_ingest_records_total %d\n", in.Records)
		fmt.Fprintf(w, "provd_ingest_commits_total %d\n", in.Commits)
		fmt.Fprintf(w, "provd_ingest_rejects_total %d\n", in.Rejects)
		fmt.Fprintf(w, "provd_ingest_conn_failures_total %d\n", in.ConnFails)
		fmt.Fprintf(w, "provd_ingest_sessions_total %d\n", in.Sessions)
		fmt.Fprintf(w, "provd_ingest_dedup_replays_total %d\n", in.DedupReplays)
		fmt.Fprintf(w, "provd_ingest_dedup_records_total %d\n", in.DedupRecords)
		fmt.Fprintf(w, "provd_ingest_dedup_evicted_total %d\n", in.DedupEvicted)
		fmt.Fprintf(w, "provd_ingest_dedup_checkpoint_failures_total %d\n", in.CheckpointFails)
	}
}
