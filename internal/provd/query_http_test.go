package provd

// Cursor pagination on the HTTP read surface: the endpoints are thin
// adapters over internal/query, so these tests pin the adapter
// behaviour — JSON shapes, cursor round-trips through URLs, filter
// validation — rather than re-proving the engine.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/store"
	"repro/internal/trust"
)

func newQueryServer(t *testing.T, policy *trust.DisclosurePolicy, n int) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := httptest.NewServer(NewServer(st, policy))
	t.Cleanup(ts.Close)
	for i := 0; i < n; i++ {
		a := ActionDTO{Principal: fmt.Sprintf("p%d", i%3), Kind: "snd",
			A: TermDTO{Name: fmt.Sprintf("c%d", i%2)}, B: TermDTO{Name: fmt.Sprintf("v%d", i)}}
		if code := postJSON(t, ts, "/append", a, nil); code != http.StatusOK {
			t.Fatalf("/append status %d", code)
		}
	}
	return ts, st
}

// TestLogCursorPagination: /log pages backwards through history via the
// cursor; the pages reassemble the exact store contents; the last page
// carries no cursor.
func TestLogCursorPagination(t *testing.T) {
	ts, st := newQueryServer(t, nil, 95)

	var seqs []uint64
	pages := 0
	path := "/log?limit=20"
	for {
		var lr LogResponse
		if code := getJSON(t, ts, path, &lr); code != http.StatusOK {
			t.Fatalf("%s status %d", path, code)
		}
		pages++
		// Tail pages arrive newest-first; prepend to rebuild history.
		pageSeqs := make([]uint64, len(lr.Records))
		for i, r := range lr.Records {
			pageSeqs[i] = r.Seq
		}
		seqs = append(pageSeqs, seqs...)
		if lr.Cursor == "" {
			break
		}
		path = "/log?limit=20&cursor=" + url.QueryEscape(lr.Cursor)
	}
	if pages != 5 {
		t.Fatalf("95 records in pages of 20 took %d pages", pages)
	}
	if len(seqs) != st.Len() {
		t.Fatalf("walk covered %d of %d records", len(seqs), st.Len())
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("position %d holds seq %d", i, s)
		}
	}
}

// TestLogForwardWalk: ?from= walks ascending with forward cursors.
func TestLogForwardWalk(t *testing.T) {
	ts, _ := newQueryServer(t, nil, 50)
	var lr LogResponse
	if code := getJSON(t, ts, "/log?from=10&limit=15", &lr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(lr.Records) != 15 || lr.Records[0].Seq != 10 || lr.Cursor == "" {
		t.Fatalf("forward page: %d records from %d, cursor %q", len(lr.Records), lr.Records[0].Seq, lr.Cursor)
	}
	var lr2 LogResponse
	if code := getJSON(t, ts, "/log?from=10&limit=100&cursor="+url.QueryEscape(lr.Cursor), &lr2); code != http.StatusOK {
		t.Fatalf("resume status %d", code)
	}
	if len(lr2.Records) != 25 || lr2.Records[0].Seq != 25 || lr2.Cursor != "" {
		t.Fatalf("forward resume: %d records from %d, cursor %q", len(lr2.Records), lr2.Records[0].Seq, lr2.Cursor)
	}
	// A malformed ?from= is a 400, not a silent walk from the wrong seq.
	for _, bad := range []string{"5xyz", "-1", "0x10", " 5"} {
		resp, err := http.Get(ts.URL + "/log?from=" + url.QueryEscape(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("from=%q status %d", bad, resp.StatusCode)
		}
	}
}

// TestShardLogFiltersAndCursor: shard pagination composes with the
// chan/kind filters, and a cursor presented with different filters is a
// 400, not a silent frankenwalk.
func TestShardLogFiltersAndCursor(t *testing.T) {
	ts, st := newQueryServer(t, nil, 120)
	var lr LogResponse
	if code := getJSON(t, ts, "/log/p0?chan=c0&limit=10", &lr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(lr.Records) != 10 || lr.Cursor == "" {
		t.Fatalf("filtered page: %d records, cursor %q", len(lr.Records), lr.Cursor)
	}
	want := st.ByChannel("p0", "c0")
	if lr.Records[0].Seq != want[len(want)-10].Seq {
		t.Fatalf("filtered tail starts at %d, want %d", lr.Records[0].Seq, want[len(want)-10].Seq)
	}
	// Same cursor, different filter: rejected.
	resp, err := http.Get(ts.URL + "/log/p0?chan=c1&limit=10&cursor=" + url.QueryEscape(lr.Cursor))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("filter-mismatched cursor status %d", resp.StatusCode)
	}
	// Garbage cursor: rejected.
	resp, err = http.Get(ts.URL + "/log?cursor=garbage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage cursor status %d", resp.StatusCode)
	}
}

// TestGlobalLogFilters: /log now accepts chan/kind filters across all
// shards (the engine's merged plan).
func TestGlobalLogFilters(t *testing.T) {
	ts, st := newQueryServer(t, nil, 60)
	var lr LogResponse
	if code := getJSON(t, ts, "/log?chan=c1&limit=1000", &lr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	wantN := 0
	for _, r := range st.GlobalRecords() {
		if r.Act.A.Name == "c1" {
			wantN++
		}
	}
	if len(lr.Records) != wantN {
		t.Fatalf("global chan filter returned %d of %d matches", len(lr.Records), wantN)
	}
	for _, r := range lr.Records {
		if r.Action.A.Name != "c1" {
			t.Fatalf("filter leaked %+v", r)
		}
	}
}

// TestPrincipalsPagination: the bare-array shape survives unpaginated;
// ?limit= switches to the object shape with counts and a cursor that
// walks the full name-sorted list.
func TestPrincipalsPagination(t *testing.T) {
	policy := trust.NewDisclosurePolicy().HideFrom("p1", "eve")
	ts, st := newQueryServer(t, policy, 30)

	var bare []string
	if code := getJSON(t, ts, "/principals", &bare); code != http.StatusOK {
		t.Fatalf("bare status %d", code)
	}
	if len(bare) != 3 {
		t.Fatalf("bare principals %v", bare)
	}
	var pr PrincipalsResponse
	if code := getJSON(t, ts, "/principals?limit=2", &pr); code != http.StatusOK {
		t.Fatalf("paged status %d", code)
	}
	if len(pr.Principals) != 2 || pr.Cursor == "" {
		t.Fatalf("page 1: %+v", pr)
	}
	for _, p := range pr.Principals {
		if want := len(st.Records(p.Principal)); p.Records != want {
			t.Fatalf("%s reports %d records, holds %d", p.Principal, p.Records, want)
		}
	}
	var pr2 PrincipalsResponse
	if code := getJSON(t, ts, "/principals?limit=2&cursor="+url.QueryEscape(pr.Cursor), &pr2); code != http.StatusOK {
		t.Fatalf("page 2 status %d", code)
	}
	if len(pr2.Principals) != 1 || pr2.Cursor != "" || pr2.Principals[0].Principal != "p2" {
		t.Fatalf("page 2: %+v", pr2)
	}
	// Hidden principals stay hidden in both shapes.
	if code := getJSON(t, ts, "/principals?observer=eve", &bare); code != http.StatusOK {
		t.Fatalf("observer status %d", code)
	}
	for _, p := range bare {
		if p == "p1" {
			t.Fatal("hidden principal listed for eve")
		}
	}
}

// TestLimitZeroProbe: ?limit=0 keeps its historical empty-response
// behaviour, and a hidden shard still 403s on it.
func TestLimitZeroProbe(t *testing.T) {
	policy := trust.NewDisclosurePolicy().HideFrom("p1", "eve")
	ts, _ := newQueryServer(t, policy, 10)
	var lr LogResponse
	if code := getJSON(t, ts, "/log?limit=0", &lr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(lr.Records) != 0 || lr.Log != "0" || lr.Cursor != "" {
		t.Fatalf("probe response %+v", lr)
	}
	resp, err := http.Get(ts.URL + "/log/p1?limit=0&observer=eve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("hidden shard probe status %d", resp.StatusCode)
	}
}
