package provd

// Replica mode: the same HTTP surface over a replicated store. Every
// read endpoint — log, audit, principals, follow via the attached
// binary listener — already runs against whatever store the server
// wraps, so replica mode only has to do three things: refuse writes
// with a pointer at the leader, report its role honestly on /healthz,
// and export replication lag on /metrics. cmd/provd enables it with
// -replica-of.

import (
	"fmt"
	"net/http"

	"repro/internal/replica"
)

// SetReplica puts the server in replica mode: mutating endpoints are
// refused (redirected to leaderHTTP when set, 503 with the leader's
// ingest address otherwise), and /healthz and /metrics report the
// replicator's role, applied sequence and lag.
func (s *Server) SetReplica(rep *replica.Replicator, leaderHTTP string) {
	s.replica = rep
	s.leaderHTTP = leaderHTTP
}

// rejectWrite answers a mutating request on a replica: a 307 redirect
// when the leader's HTTP base is known (the client may replay the same
// body there), a 503 naming the leader's ingest address otherwise.
func (s *Server) rejectWrite(w http.ResponseWriter, r *http.Request) {
	if s.leaderHTTP != "" {
		http.Redirect(w, r, s.leaderHTTP+r.URL.RequestURI(), http.StatusTemporaryRedirect)
		return
	}
	s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error":  "read-only replica: writes must go to the leader",
		"leader": s.replica.Status().Leader,
	})
}

// replicaHealth folds the replicator's status into the health payload.
func (s *Server) replicaHealth(h map[string]any) {
	st := s.replica.Status()
	h["role"] = "replica"
	h["leader"] = st.Leader
	h["applied_seq"] = st.AppliedSeq
	h["lag_records"] = st.LagRecords
	h["lag_seconds"] = st.LagSeconds
	if st.Diverged {
		h["status"] = "diverged"
	} else if !st.Running {
		h["status"] = "stopped"
	}
}

// replicaMetrics emits the replication gauges on /metrics.
func (s *Server) replicaMetrics(w http.ResponseWriter) {
	st := s.replica.Status()
	fmt.Fprintf(w, "provd_replica_applied_seq %d\n", st.AppliedSeq)
	fmt.Fprintf(w, "provd_replica_leader_seq %d\n", st.LeaderSeq)
	fmt.Fprintf(w, "provd_replica_lag_records %d\n", st.LagRecords)
	fmt.Fprintf(w, "provd_replica_lag_seconds %.3f\n", st.LagSeconds)
	fmt.Fprintf(w, "provd_replica_bootstraps_total %d\n", st.Bootstraps)
	fmt.Fprintf(w, "provd_replica_bootstrap_records_total %d\n", st.BootstrapRecords)
	fmt.Fprintf(w, "provd_replica_follows_total %d\n", st.Follows)
	fmt.Fprintf(w, "provd_replica_applied_batches_total %d\n", st.AppliedBatches)
	fmt.Fprintf(w, "provd_replica_applied_records_total %d\n", st.AppliedRecords)
	fmt.Fprintf(w, "provd_replica_gaps_total %d\n", st.Gaps)
	fmt.Fprintf(w, "provd_replica_gaps_accepted_total %d\n", st.GapsAccepted)
	diverged := 0
	if st.Diverged {
		diverged = 1
	}
	fmt.Fprintf(w, "provd_replica_diverged %d\n", diverged)
}
