package provd

// The flagship replication e2e (ISSUE 6): bootstrap a replica from a
// 100k-record leader while ingest continues, kill the replica
// mid-follow, restart it, and prove the converged replica is
// bit-identical to the leader — the log record for record, and every
// Definition-3 audit verdict — while its provd serves the full read
// surface, refuses writes toward the leader, and exports lag.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/logs"
	"repro/internal/provclient"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/testutil"
)

// replicaAct varies the value by position (unlike testutil.Act) so the
// audit-verdict samples below cover several distinct values.
func replicaAct(p string, i int) logs.Action {
	return logs.SndAct(p, logs.NameT(fmt.Sprintf("m%d", i)), logs.NameT(fmt.Sprintf("v%d", i%11)))
}

func waitReplicaSeq(t *testing.T, st *store.Store, want uint64, within time.Duration) {
	t.Helper()
	testutil.WaitSeq(t, st, want, within)
}

func TestReplicaEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-record e2e")
	}
	const seedRecords = 50000
	const liveRecords = 50000

	// Leader: store + binary listener + HTTP app.
	leaderSt, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderSt.Close()
	leaderApp := NewServer(leaderSt, nil)
	leaderIng := ingest.NewServer(leaderSt, ingest.Options{Engine: leaderApp.Engine()})
	leaderAddr, err := leaderIng.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer leaderIng.Close()
	leaderHTTP := httptest.NewServer(leaderApp)
	defer leaderHTTP.Close()

	// Seed half the log before the replica exists, so the bootstrap has
	// real bulk to ship.
	batch := make([]logs.Action, 0, 1000)
	for i := 0; i < seedRecords; i++ {
		batch = append(batch, replicaAct(fmt.Sprintf("p%d", i%13), i))
		if len(batch) == cap(batch) {
			if _, err := leaderSt.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}

	// The other half arrives through the binary ingest path while the
	// replica bootstraps and follows.
	ingestDone := make(chan struct{})
	go func() {
		defer close(ingestDone)
		pc := provclient.New(leaderAddr, provclient.Options{Conns: 2})
		defer pc.Close()
		chunk := make([]logs.Action, 0, 500)
		for i := 0; i < liveRecords; i++ {
			chunk = append(chunk, replicaAct(fmt.Sprintf("live%d", i%5), i))
			if len(chunk) == cap(chunk) {
				if _, err := pc.AppendBatch(chunk); err != nil {
					t.Error(err)
					return
				}
				chunk = chunk[:0]
			}
		}
	}()

	// Replica: bootstrap under concurrent ingest.
	repDir := t.TempDir()
	repSt, err := store.Open(repDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := replica.New(repSt, leaderAddr, replica.Options{PollInterval: 100 * time.Millisecond})
	rep.Start()
	waitReplicaSeq(t, repSt, seedRecords, 60*time.Second)

	// Kill mid-follow: stop the replicator and close the store while the
	// live appender is still committing on the leader.
	rep.Stop()
	killedAt := repSt.NextSeq()
	if err := repSt.Close(); err != nil {
		t.Fatal(err)
	}
	<-ingestDone
	if killedAt >= leaderSt.NextSeq() {
		t.Logf("note: kill landed after convergence (replica %d, leader %d); restart still exercised", killedAt, leaderSt.NextSeq())
	}

	// Restart: reopen the store, new replicator, same dir. Crash =
	// restart = resume; no second bootstrap.
	repSt, err = store.Open(repDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer repSt.Close()
	if repSt.NextSeq() != killedAt {
		t.Fatalf("recovered high-water %d, want %d", repSt.NextSeq(), killedAt)
	}
	rep2 := replica.New(repSt, leaderAddr, replica.Options{PollInterval: 100 * time.Millisecond})
	rep2.Start()
	defer rep2.Stop()
	waitReplicaSeq(t, repSt, leaderSt.NextSeq(), 60*time.Second)
	if rep2.Status().Bootstraps != 0 {
		t.Fatalf("restart re-bootstrapped a non-empty replica")
	}

	// Bit-identical logs: every record at every sequence, and a spine
	// with no holes or duplicates.
	if l, r := leaderSt.NextSeq(), repSt.NextSeq(); l != r || l != seedRecords+liveRecords {
		t.Fatalf("high-water: leader %d, replica %d, want %d", l, r, seedRecords+liveRecords)
	}
	testutil.AssertIdentical(t, leaderSt, repSt)
	if err := testutil.CheckSpine(repSt); err != nil {
		t.Fatal(err)
	}

	// Bit-identical Definition-3 verdicts, including claims that must
	// fail: an audit is a pure function of the log, so leader and
	// replica must agree on every one.
	samples := leaderSt.ScanGlobal(0, 0, 10)
	samples = append(samples, leaderSt.ScanGlobalTail(0, 10)...)
	for _, r := range samples {
		lerr := leaderSt.AuditTerm(r.Act.A, nil)
		rerr := repSt.AuditTerm(r.Act.A, nil)
		if (lerr == nil) != (rerr == nil) {
			t.Fatalf("audit verdicts differ for %s at seq %d: leader %v, replica %v", r.Act.A, r.Seq, lerr, rerr)
		}
	}
	lerr := leaderSt.AuditTerm(logs.NameT("never-sent-value"), nil)
	rerr := repSt.AuditTerm(logs.NameT("never-sent-value"), nil)
	if (lerr == nil) != (rerr == nil) {
		t.Fatalf("negative audit verdicts differ: leader %v, replica %v", lerr, rerr)
	}

	// Replica-mode provd: reads serve locally, writes are refused, the
	// role and lag are reported.
	repApp := NewServer(repSt, nil)
	repApp.SetReplica(rep2, "")
	repHTTP := httptest.NewServer(repApp)
	defer repHTTP.Close()

	var health map[string]any
	if code := getJSON(t, repHTTP, "/healthz", &health); code != http.StatusOK {
		t.Fatalf("replica healthz returned %d", code)
	}
	if health["role"] != "replica" || health["leader"] != leaderAddr {
		t.Fatalf("replica healthz: %+v", health)
	}

	var appendResp map[string]any
	code := postJSON(t, repHTTP, "/append", map[string]any{"principal": "x", "kind": "snd", "a": map[string]string{"name": "m"}, "b": map[string]string{"name": "v"}}, &appendResp)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("replica append returned %d, want 503", code)
	}
	if appendResp["leader"] != leaderAddr {
		t.Fatalf("replica append rejection names %v, want %s", appendResp["leader"], leaderAddr)
	}

	// With a leader HTTP base the same write redirects instead.
	repApp2 := NewServer(repSt, nil)
	repApp2.SetReplica(rep2, leaderHTTP.URL)
	redirSrv := httptest.NewServer(repApp2)
	defer redirSrv.Close()
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	resp, err := noRedirect.Post(redirSrv.URL+"/append", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("replica append with leader-http returned %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != leaderHTTP.URL+"/append" {
		t.Fatalf("redirect location %q, want %q", loc, leaderHTTP.URL+"/append")
	}

	// The read surface really serves: the replica's /log answers from
	// its local store.
	var lastLog LogResponse
	if code := getJSON(t, repHTTP, "/log?limit=5", &lastLog); code != http.StatusOK {
		t.Fatalf("replica /log returned %d", code)
	}
	if len(lastLog.Records) != 5 {
		t.Fatalf("replica /log served %d records, want 5", len(lastLog.Records))
	}

	// Lag metrics are exported.
	resp, err = http.Get(repHTTP.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"provd_replica_lag_records ",
		"provd_replica_lag_seconds ",
		fmt.Sprintf("provd_replica_applied_seq %d", repSt.NextSeq()),
		"provd_replica_follows_total ",
		"provd_replica_diverged 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("replica /metrics missing %q:\n%s", want, metrics)
		}
	}
}
