package provd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pattern"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/syntax"
	"repro/internal/trust"
)

func postJSON(t *testing.T, ts *httptest.Server, path string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// TestServerEndToEnd: a fault-injected runtime mirrors into the store;
// after a simulated restart the daemon serves the recovered log and its
// /audit verdicts agree with the in-memory middleware path.
func TestServerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}

	net := runtime.NewNet()
	defer net.Close()
	net.SetSink(st)
	net.SetFaults(&runtime.Faults{DropRate: 0.15, DupRate: 0.15, Seed: 11})
	a := net.Register("a")
	b := net.Register("b")

	var held []syntax.AnnotatedValue
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			vals, err := b.Recv(syntax.Fresh(syntax.Chan("m")), 100*time.Millisecond, pattern.AnyP())
			if err != nil {
				return
			}
			held = append(held, vals[0])
		}
	}()
	for i := 0; i < 25; i++ {
		if err := a.Send(syntax.Fresh(syntax.Chan("m")), syntax.Fresh(syntax.Chan(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := net.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(held) == 0 {
		t.Fatal("nothing delivered")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recover from segment files and serve.
	st2, err := store.Open(dir, store.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ts := httptest.NewServer(NewServer(st2, nil))
	defer ts.Close()

	var lr LogResponse
	if code := getJSON(t, ts, "/log", &lr); code != http.StatusOK {
		t.Fatalf("/log status %d", code)
	}
	if len(lr.Records) != net.LogLen() {
		t.Fatalf("daemon serves %d records, middleware logged %d", len(lr.Records), net.LogLen())
	}

	// Audit parity for every delivered value.
	for _, v := range held {
		var ar AuditResponse
		req := AuditRequest{Value: v.V.Name, Prov: eventDTOs(v.K)}
		if code := postJSON(t, ts, "/audit", req, &ar); code != http.StatusOK {
			t.Fatalf("/audit status %d", code)
		}
		memOK := net.AuditValue(v) == nil
		if ar.Correct != memOK {
			t.Fatalf("audit verdicts disagree for %s: daemon=%v mem=%v (%s)", v, ar.Correct, memOK, ar.Detail)
		}
		if !ar.Correct {
			t.Errorf("genuine value rejected: %s", ar.Detail)
		}
	}

	// A forged claim is rejected by both paths.
	var ar AuditResponse
	forged := AuditRequest{Value: "vX", Prov: []EventDTO{{Principal: "z", Dir: "!"}}}
	postJSON(t, ts, "/audit", forged, &ar)
	if ar.Correct {
		t.Error("daemon accepted a forged provenance claim")
	}
	if net.AuditValue(syntax.Annot(syntax.Chan("vX"), syntax.Seq(syntax.OutEvent("z", nil)))) == nil {
		t.Error("middleware accepted a forged provenance claim")
	}
}

// TestServerAppendQueryRedaction: /append ingests actions, shard queries
// filter via the indexes, and the disclosure policy redacts per observer
// at query time.
func TestServerAppendQueryRedaction(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	policy := trust.NewDisclosurePolicy().HideFrom("s", "c")
	ts := httptest.NewServer(NewServer(st, policy))
	defer ts.Close()

	actions := []ActionDTO{
		{Principal: "a", Kind: "snd", A: TermDTO{Name: "m"}, B: TermDTO{Name: "v"}},
		{Principal: "s", Kind: "rcv", A: TermDTO{Name: "m"}, B: TermDTO{Name: "v"}},
		{Principal: "s", Kind: "snd", A: TermDTO{Name: "n"}, B: TermDTO{Name: "v"}},
		{Principal: "s", Kind: "ift", A: TermDTO{Name: "v"}, B: TermDTO{Name: "v"}},
	}
	for i, a := range actions {
		var resp AppendResponse
		if code := postJSON(t, ts, "/append", a, &resp); code != http.StatusOK {
			t.Fatalf("/append status %d", code)
		}
		if resp.Seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, resp.Seq)
		}
	}

	// Index-backed filters.
	var lr LogResponse
	getJSON(t, ts, "/log/s?chan=m", &lr)
	if len(lr.Records) != 1 || lr.Records[0].Action.Kind != "rcv" {
		t.Fatalf("chan filter returned %+v", lr.Records)
	}
	getJSON(t, ts, "/log/s?kind=ift", &lr)
	if len(lr.Records) != 1 || lr.Records[0].Action.Kind != "ift" {
		t.Fatalf("kind filter returned %+v", lr.Records)
	}

	// The shard endpoint is keyed by the acting principal, so for a
	// hidden observer it is denied outright rather than served masked.
	resp, err := http.Get(ts.URL + "/log/s?observer=c")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("hidden shard served to observer c: status %d", resp.StatusCode)
	}

	// Observer c must not see s's actions; observer b sees everything.
	getJSON(t, ts, "/log?observer=c", &lr)
	for _, r := range lr.Records {
		if r.Action.Principal == "s" {
			t.Fatalf("observer c saw a hidden action: %+v", r)
		}
	}
	if !strings.Contains(lr.Log, trust.RedactedPrincipal) {
		t.Fatal("redacted log lacks the opaque marker")
	}
	getJSON(t, ts, "/log?observer=b", &lr)
	sSeen := 0
	for _, r := range lr.Records {
		if r.Action.Principal == "s" {
			sSeen++
		}
	}
	if sSeen != 3 {
		t.Fatalf("observer b sees %d of s's actions, want 3", sSeen)
	}

	// Malformed requests are 400s, not 500s.
	var e map[string]string
	if code := postJSON(t, ts, "/append", ActionDTO{Principal: "a", Kind: "bogus"}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad kind: status %d", code)
	}
	if code := postJSON(t, ts, "/audit", AuditRequest{}, &e); code != http.StatusBadRequest {
		t.Fatalf("empty audit: status %d", code)
	}
}

// TestServerAuditObserverView: the audit response echoes the observer's
// redacted view of the claimed provenance.
func TestServerAuditObserverView(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	policy := trust.NewDisclosurePolicy().HideFrom("s")
	ts := httptest.NewServer(NewServer(st, policy))
	defer ts.Close()

	// Log: a sends v on m, s receives and re-sends, c receives.
	for _, a := range []ActionDTO{
		{Principal: "a", Kind: "snd", A: TermDTO{Name: "m"}, B: TermDTO{Name: "v"}},
		{Principal: "s", Kind: "rcv", A: TermDTO{Name: "m"}, B: TermDTO{Name: "v"}},
		{Principal: "s", Kind: "snd", A: TermDTO{Name: "n"}, B: TermDTO{Name: "v"}},
		{Principal: "c", Kind: "rcv", A: TermDTO{Name: "n"}, B: TermDTO{Name: "v"}},
	} {
		if code := postJSON(t, ts, "/append", a, nil); code != http.StatusOK {
			t.Fatalf("/append status %d", code)
		}
	}
	req := AuditRequest{
		Value: "v",
		Prov: []EventDTO{
			{Principal: "c", Dir: "?"},
			{Principal: "s", Dir: "!"},
			{Principal: "s", Dir: "?"},
			{Principal: "a", Dir: "!"},
		},
		Observer: "c",
	}
	var ar AuditResponse
	postJSON(t, ts, "/audit", req, &ar)
	if !ar.Correct {
		t.Fatalf("genuine chain rejected: %s", ar.Detail)
	}
	if len(ar.ProvView) != 4 {
		t.Fatalf("prov view has %d events, want 4 (redaction must not shorten history)", len(ar.ProvView))
	}
	for i, e := range ar.ProvView {
		if (i == 1 || i == 2) && e.Principal != trust.RedactedPrincipal {
			t.Fatalf("event %d not redacted for observer c: %+v", i, e)
		}
		if (i == 0 || i == 3) && e.Principal == trust.RedactedPrincipal {
			t.Fatalf("event %d over-redacted: %+v", i, e)
		}
	}
}

// TestServerConcurrentBatchAppendRestartParity: the daemon ingests
// concurrent batched /append traffic (the remote-mirror fast path),
// then is "restarted" — store closed and recovered purely from segment
// files — and every audit verdict collected live must be reproduced
// identically by the replayed store.
func TestServerConcurrentBatchAppendRestartParity(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SegmentBytes: 512, Stripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(st, nil))

	// Each worker posts batches that embed a relay chain
	// aW -snd-> m -rcv-> sW -snd-> n -rcv-> cW amid unrelated traffic, so
	// there are genuine cross-principal claims to audit afterwards.
	const workers, batchesPer = 6, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			a, s, c := fmt.Sprintf("a%d", wkr), fmt.Sprintf("s%d", wkr), fmt.Sprintf("c%d", wkr)
			for b := 0; b < batchesPer; b++ {
				v := fmt.Sprintf("v%d_%d", wkr, b)
				batch := []ActionDTO{
					{Principal: a, Kind: "snd", A: TermDTO{Name: "m"}, B: TermDTO{Name: v}},
					{Principal: s, Kind: "rcv", A: TermDTO{Name: "m"}, B: TermDTO{Name: v}},
					{Principal: a, Kind: "ift", A: TermDTO{Name: v}, B: TermDTO{Name: v}},
					{Principal: s, Kind: "snd", A: TermDTO{Name: "n"}, B: TermDTO{Name: v}},
					{Principal: c, Kind: "rcv", A: TermDTO{Name: "n"}, B: TermDTO{Name: v}},
				}
				body, err := json.Marshal(batch)
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var br BatchAppendResponse
				err = json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("batch append status %d", resp.StatusCode)
					return
				}
				if br.Count != len(batch) {
					errs <- fmt.Errorf("batch ack count %d, want %d", br.Count, len(batch))
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Audit claims: one genuine relay chain per worker, plus forgeries
	// (a principal that never acted; a chain with the hops inverted).
	claims := make([]AuditRequest, 0, 2*workers)
	for wkr := 0; wkr < workers; wkr++ {
		a, s, c := fmt.Sprintf("a%d", wkr), fmt.Sprintf("s%d", wkr), fmt.Sprintf("c%d", wkr)
		claims = append(claims, AuditRequest{
			Value: fmt.Sprintf("v%d_0", wkr),
			Prov: []EventDTO{
				{Principal: c, Dir: "?"}, {Principal: s, Dir: "!"},
				{Principal: s, Dir: "?"}, {Principal: a, Dir: "!"},
			},
		})
		claims = append(claims, AuditRequest{
			Value: fmt.Sprintf("v%d_0", wkr),
			Prov:  []EventDTO{{Principal: c, Dir: "?"}, {Principal: "zz", Dir: "!"}},
		})
	}
	audit := func(ts *httptest.Server) []AuditResponse {
		out := make([]AuditResponse, len(claims))
		for i, req := range claims {
			if code := postJSON(t, ts, "/audit", req, &out[i]); code != http.StatusOK {
				t.Fatalf("/audit status %d", code)
			}
		}
		return out
	}
	live := audit(ts)
	liveLen := st.Len()
	for i, ar := range live {
		if genuine := i%2 == 0; ar.Correct != genuine {
			t.Fatalf("live verdict %d = %v, want %v (%s)", i, ar.Correct, genuine, ar.Detail)
		}
	}
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recover from disk, replay the same audits.
	st2, err := store.Open(dir, store.Options{SegmentBytes: 512, Stripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, want := st2.Len(), liveLen; got != want {
		t.Fatalf("recovered %d records, live store had %d", got, want)
	}
	if got, want := st2.Len(), workers*batchesPer*5; got != want {
		t.Fatalf("recovered %d records, appended %d", got, want)
	}
	ts2 := httptest.NewServer(NewServer(st2, nil))
	defer ts2.Close()
	for i, replayed := range audit(ts2) {
		if replayed.Correct != live[i].Correct {
			t.Fatalf("audit verdict %d changed across restart: live=%v replayed=%v (%s)",
				i, live[i].Correct, replayed.Correct, replayed.Detail)
		}
	}
}
