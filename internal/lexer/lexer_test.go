package lexer

import "testing"

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	out := make([]Kind, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.Kind)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, `a[m!(v)]`)
	want := []Kind{Name, LBrack, Name, Bang, LParen, Name, RParen, RBrack, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMaximalMunch(t *testing.T) {
	cases := []struct {
		src  string
		want Kind
	}{
		{"<<", LAngle2},
		{">>", RAngle2},
		{"||", Bar2},
		{"[]", SumSep},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", c.src, err)
		}
		if toks[0].Kind != c.want || toks[1].Kind != EOF {
			t.Errorf("Lex(%q) = %v, want single %v", c.src, toks, c.want)
		}
	}
	// Single-char fallbacks.
	toks, _ := Lex("|")
	if toks[0].Kind != Bar {
		t.Errorf("single | should be Bar")
	}
}

func TestSumSepVsBrackets(t *testing.T) {
	// a[0] must lex as LBrack Zero RBrack, not SumSep.
	got := kinds(t, "a[0]")
	want := []Kind{Name, LBrack, Zero, RBrack, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Adjacent [] is a sum separator.
	got = kinds(t, "[]")
	if got[0] != SumSep {
		t.Errorf("adjacent [] should be SumSep: %v", got)
	}
}

func TestKeywords(t *testing.T) {
	got := kinds(t, "new if then else as eps any")
	want := []Kind{KwNew, KwIf, KwThen, KwElse, KwAs, KwEps, KwAny, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Prefixes of keywords are names.
	toks, _ := Lex("anybody news")
	if toks[0].Kind != Name || toks[1].Kind != Name {
		t.Errorf("keyword prefixes must lex as names: %v", toks)
	}
}

func TestNamesWithDigitsAndPrimes(t *testing.T) {
	toks, err := Lex("c1 j2 n' x_y")
	if err != nil {
		t.Fatal(err)
	}
	wantTexts := []string{"c1", "j2", "n'", "x_y"}
	for i, want := range wantTexts {
		if toks[i].Kind != Name || toks[i].Text != want {
			t.Errorf("token %d = %v %q, want name %q", i, toks[i].Kind, toks[i].Text, want)
		}
	}
}

func TestZeroToken(t *testing.T) {
	toks, _ := Lex("0")
	if toks[0].Kind != Zero {
		t.Errorf("0 should lex as Zero")
	}
	if _, err := Lex("0abc"); err == nil {
		t.Errorf("0abc should be rejected (names start with letters)")
	}
	if _, err := Lex("123"); err == nil {
		t.Errorf("bare numbers are not in the language")
	}
}

func TestReservedTilde(t *testing.T) {
	// '~' alone is the universal group; inside a name it is reserved for
	// generated fresh names and must be rejected.
	toks, err := Lex("~")
	if err != nil || toks[0].Kind != Tilde {
		t.Errorf("~ should lex as Tilde: %v %v", toks, err)
	}
	if _, err := Lex("n~1"); err == nil {
		t.Errorf("names containing ~ must be rejected")
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // comment with [ ] ! tokens\nb")
	want := []Kind{Name, Name, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Lex("abc\n  #")
	if err == nil {
		t.Fatal("expected error")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if le.Line != 2 || le.Col != 3 {
		t.Errorf("error at %d:%d, want 2:3", le.Line, le.Col)
	}
}

func TestAllPunctuation(t *testing.T) {
	src := "( ) { } ! ? . , ; : = * / + - @ $"
	want := []Kind{LParen, RParen, LBrace, RBrace, Bang, Query, Dot, Comma,
		Semi, Colon, Eq, Star, Slash, Plus, Minus, At, Dollar, EOF}
	got := kinds(t, src)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestEmptyInput(t *testing.T) {
	toks, err := Lex("")
	if err != nil || len(toks) != 1 || toks[0].Kind != EOF {
		t.Errorf("empty input should lex to EOF only: %v %v", toks, err)
	}
}
