// Package lexer tokenizes the surface syntax of the provenance calculus
// used by the parser and the command-line tools. The surface language
// covers systems, processes, patterns, provenance literals and logs; see
// package parser for the grammar.
package lexer

import (
	"fmt"
	"strings"
)

// Kind is the lexical class of a token.
type Kind int

const (
	// EOF marks the end of input.
	EOF Kind = iota
	// Name is an identifier: a letter followed by letters, digits, _ or '.
	Name
	// Zero is the literal 0 (the inert process / empty log).
	Zero
	// Punctuation and operators.
	LBrack  // [
	RBrack  // ]
	SumSep  // [] (between input-sum branches)
	LParen  // (
	RParen  // )
	LBrace  // {
	RBrace  // }
	LAngle2 // <<
	RAngle2 // >>
	Bang    // !
	Query   // ?
	Dot     // .
	Comma   // ,
	Semi    // ;
	Colon   // :
	Eq      // =
	Bar     // |
	Bar2    // ||
	Star    // *
	Slash   // / (pattern alternation)
	Plus    // + (group union)
	Minus   // - (group difference)
	Tilde   // ~ (the universal group)
	At      // @ (principal-kind marker in value position)
	Dollar  // $ (log variable marker)
	// Keywords.
	KwNew  // new
	KwIf   // if
	KwThen // then
	KwElse // else
	KwAs   // as
	KwEps  // eps
	KwAny  // any
)

var kindNames = map[Kind]string{
	EOF: "end of input", Name: "name", Zero: "0",
	LBrack: "[", RBrack: "]", SumSep: "[]", LParen: "(", RParen: ")",
	LBrace: "{", RBrace: "}", LAngle2: "<<", RAngle2: ">>",
	Bang: "!", Query: "?", Dot: ".", Comma: ",", Semi: ";", Colon: ":",
	Eq: "=", Bar: "|", Bar2: "||", Star: "*", Slash: "/",
	Plus: "+", Minus: "-", Tilde: "~", At: "@", Dollar: "$",
	KwNew: "new", KwIf: "if", KwThen: "then", KwElse: "else", KwAs: "as",
	KwEps: "eps", KwAny: "any",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"new": KwNew, "if": KwIf, "then": KwThen, "else": KwElse,
	"as": KwAs, "eps": KwEps, "any": KwAny,
}

// Token is a lexed token with its source position (byte offset, 1-based
// line and column).
type Token struct {
	Kind Kind
	Text string
	Off  int
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == Name {
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}

// Error is a lexical error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenizes src. Comments run from // to end of line. It returns the
// token stream terminated by an EOF token.
func Lex(src string) ([]Token, error) {
	var out []Token
	line, col := 1, 1
	i := 0
	emit := func(kind Kind, text string) {
		out = append(out, Token{Kind: kind, Text: text, Off: i, Line: line, Col: col})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			col = 1
			i++
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
			continue
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		case isLetter(c):
			j := i
			for j < len(src) && isNameChar(src[j]) {
				j++
			}
			word := src[i:j]
			if strings.ContainsRune(word, '~') {
				return nil, &Error{line, col, fmt.Sprintf("name %q contains the reserved character '~'", word)}
			}
			if kw, ok := keywords[word]; ok {
				emit(kw, word)
			} else {
				emit(Name, word)
			}
			col += j - i
			i = j
			continue
		case c == '0' && (i+1 >= len(src) || !isNameChar(src[i+1])):
			emit(Zero, "0")
			i++
			col++
			continue
		case c >= '0' && c <= '9':
			return nil, &Error{line, col, fmt.Sprintf("names must start with a letter, got %q", c)}
		}
		two := ""
		if i+1 < len(src) {
			two = src[i : i+2]
		}
		switch two {
		case "[]":
			emit(SumSep, two)
			i += 2
			col += 2
			continue
		case "<<":
			emit(LAngle2, two)
			i += 2
			col += 2
			continue
		case ">>":
			emit(RAngle2, two)
			i += 2
			col += 2
			continue
		case "||":
			emit(Bar2, two)
			i += 2
			col += 2
			continue
		}
		var k Kind
		switch c {
		case '[':
			k = LBrack
		case ']':
			k = RBrack
		case '(':
			k = LParen
		case ')':
			k = RParen
		case '{':
			k = LBrace
		case '}':
			k = RBrace
		case '!':
			k = Bang
		case '?':
			k = Query
		case '.':
			k = Dot
		case ',':
			k = Comma
		case ';':
			k = Semi
		case ':':
			k = Colon
		case '=':
			k = Eq
		case '|':
			k = Bar
		case '*':
			k = Star
		case '/':
			k = Slash
		case '+':
			k = Plus
		case '-':
			k = Minus
		case '~':
			k = Tilde
		case '@':
			k = At
		case '$':
			k = Dollar
		default:
			return nil, &Error{line, col, fmt.Sprintf("unexpected character %q", c)}
		}
		emit(k, string(c))
		i++
		col++
	}
	out = append(out, Token{Kind: EOF, Off: i, Line: line, Col: col})
	return out, nil
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isNameChar(c byte) bool {
	return isLetter(c) || c >= '0' && c <= '9' || c == '\'' || c == '~'
}
