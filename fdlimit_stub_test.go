//go:build !linux

package repro_test

// raiseFDLimit is a no-op where the benchmark can't portably adjust
// RLIMIT_NOFILE; report "plenty" and let dial errors surface naturally.
func raiseFDLimit(need uint64) uint64 { return need }
