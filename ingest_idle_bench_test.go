package repro_test

// BenchmarkIngestIdleConns measures what an *idle* connection costs the
// ingest listener, at 100 / 1k / 10k established connections. Each
// sub-benchmark dials N raw binary-protocol clients, appends one batch
// on each so the connection is fully active once, then waits for every
// connection to idle-park. At that point it reports, per tier:
//
//	goroutines   — runtime.NumGoroutine() with all N conns parked. On
//	               Linux (epoll parking) this must stay roughly flat in
//	               N; the portable sentry fallback is one goroutine per
//	               conn and shows up as a linear column.
//	heap-B/conn  — (heap-in-use parked − heap-in-use before dialing)/N,
//	               after a forced GC. Includes the client half of each
//	               loopback conn, so it is an upper bound on the
//	               server-side cost.
//	p99-wake-ns  — p99 of wake-to-ack: one batch sent to a (re)parked
//	               conn, timed to its durable ack. The timed loop
//	               round-robins, so with IdlePark at 5ms every revisit
//	               finds the conn parked again and pays the real
//	               unpark cost.
//
// The 10k tier needs ~2×10k+slack file descriptors (both halves of
// every loopback conn live in this process); the benchmark tries to
// raise RLIMIT_NOFILE and skips the tier if the limit won't budge.
// BENCH_IDLE_CONNS_MAX=<n> drops tiers above n (CI uses this to keep
// runner fd limits and wall-clock in check).

import (
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/logs"
	"repro/internal/store"
	"repro/internal/wire"
)

// idleConn is the minimal client for the idle benchmark: one socket,
// one stream encoder/decoder pair whose pooled buffers are released
// between appends so the client side of a parked conn is as close to
// free as the server side claims to be.
type idleConn struct {
	c   net.Conn
	enc *wire.StreamEncoder
	dec *wire.StreamDecoder
	e   *wire.Encoder
}

func dialIdle(addr string) (*idleConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &idleConn{c: c, enc: wire.NewStreamEncoder(c), dec: wire.NewStreamDecoder(c), e: wire.NewEncoder()}, nil
}

// appendOne sends a one-action batch and blocks until its ack, then
// releases the stream buffers back to the wire pool.
func (ic *idleConn) appendOne(id uint64, act logs.Action) error {
	ic.e.Reset()
	ic.e.IngestBatch(id, []logs.Action{act})
	if err := ic.enc.Envelope(ic.e.Bytes()); err != nil {
		return err
	}
	if err := ic.enc.Flush(); err != nil {
		return err
	}
	ic.c.SetReadDeadline(time.Now().Add(30 * time.Second))
	env, err := ic.dec.Envelope()
	if err != nil {
		return err
	}
	m, err := wire.DecodeIngest(env)
	if err != nil {
		return err
	}
	if m.Op != wire.OpIngestAck {
		return fmt.Errorf("conn got op %#x (err %q), want ack", m.Op, m.Msg)
	}
	ic.enc.ReleaseBuffers()
	ic.dec.ReleaseBuffers()
	return nil
}

func idleConnTiers() []int {
	tiers := []int{100, 1000, 10000}
	// BENCH_IDLE_CONNS_TIERS replaces the tier list outright — for
	// boxes whose fd ceiling sits just under a standard tier (a 20000
	// hard cap fits 9000 loopback conns, not 10000).
	if env := os.Getenv("BENCH_IDLE_CONNS_TIERS"); env != "" {
		tiers = nil
		for _, f := range strings.Split(env, ",") {
			if v, err := strconv.Atoi(strings.TrimSpace(f)); err == nil && v > 0 {
				tiers = append(tiers, v)
			}
		}
	}
	limit := 1 << 30
	if env := os.Getenv("BENCH_IDLE_CONNS_MAX"); env != "" {
		if v, err := strconv.Atoi(env); err == nil && v > 0 {
			limit = v
		}
	}
	var out []int
	for _, n := range tiers {
		if n <= limit {
			out = append(out, n)
		}
	}
	return out
}

func BenchmarkIngestIdleConns(b *testing.B) {
	for _, n := range idleConnTiers() {
		b.Run(fmt.Sprintf("conns=%d", n), func(b *testing.B) { benchIdleConns(b, n) })
	}
}

func benchIdleConns(b *testing.B, n int) {
	need := uint64(2*n + 512)
	if have := raiseFDLimit(need); have < need {
		b.Skipf("need %d fds for %d loopback conns, limit is %d", need, n, have)
	}

	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	srv := ingest.NewServer(st, ingest.Options{IdlePark: 5 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapBefore := ms.HeapInuse

	// Dial and warm all N conns through a small worker pool: one batch
	// each, acked, so every connection has been identified and has been
	// through a full commit round before it goes idle.
	conns := make([]*idleConn, n)
	errs := make(chan error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				ic, err := dialIdle(addr)
				if err == nil {
					conns[i] = ic
					err = ic.appendOne(1, benchAct(i%256, 0))
				}
				if err != nil {
					errs <- fmt.Errorf("conn %d: %w", i, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	defer func() {
		for _, ic := range conns {
			if ic != nil {
				ic.c.Close()
			}
		}
	}()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}

	// Everything parked: the tier's resting state.
	deadline := time.Now().Add(2 * time.Minute)
	for srv.Stats().Parked < uint64(n) {
		if time.Now().After(deadline) {
			b.Fatalf("only %d/%d conns parked", srv.Stats().Parked, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	goroutines := runtime.NumGoroutine()
	heapPerConn := float64(0)
	if ms.HeapInuse > heapBefore {
		heapPerConn = float64(ms.HeapInuse-heapBefore) / float64(n)
	}

	// Wake-to-ack: round-robin over the parked fleet, one small batch
	// per op, timed to the durable ack.
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	id := uint64(2)
	for i := 0; i < b.N; i++ {
		ic := conns[i%n]
		start := time.Now()
		if err := ic.appendOne(id, benchAct(i%256, i)); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
		id++
	}
	b.StopTimer()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-wake-ns")
	}
	b.ReportMetric(float64(goroutines), "goroutines")
	b.ReportMetric(heapPerConn, "heap-B/conn")
	b.ReportMetric(float64(srv.Stats().Wakes), "wakes")
}
