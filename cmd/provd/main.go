// Command provd is the provenance log daemon: a durable, sharded store
// for the global monitor log (internal/store) fronted by an HTTP/JSON
// audit and query service.
//
//	provd -addr :7709 -dir ./provd-data \
//	  -tls-cert server.pem -tls-key server-key.pem -tls-ca ca.pem \
//	  -auth-map auth.map
//
// Endpoints:
//
//	POST /append            durably append one action      {"principal":"a","kind":"snd","a":{"name":"m"},"b":{"name":"v"}}
//	                        or a batch (JSON array of actions; one lock round, contiguous seqs in body order)
//	GET  /log               recovered global log           ?observer= redacts; ?limit= pages; ?cursor= resumes;
//	                                                       ?chan= / ?kind= filter; ?from=seq walks forward
//	GET  /log/{principal}   one shard                      same parameters, served from the shard indexes
//	POST /audit             Definition-3 correctness check {"value":"v","prov":[{"principal":"a","dir":"!"}]}
//	POST /compact           merge sealed segments          ?principal= for one shard
//	GET  /principals        known shards                   ?observer= omits principals hiding from it;
//	                                                       ?limit=/?cursor= pages with per-shard record counts
//	GET  /healthz           liveness + next sequence number
//	GET  /metrics           store/engine/server counters (text)
//
// Every read endpoint is an adapter over the typed query engine
// (internal/query): one filter/pagination/redaction semantics for the
// whole read surface, with opaque cursors that stay valid while
// appends continue (a page walk never sees records past its first
// page's snapshot).
//
// Alongside the HTTP surface, provd serves the binary pipelined ingest
// protocol (-ingest-addr, default :7710; see docs/protocol.md): framed
// binary batches with per-connection group commit into the store, the
// path a fleet of monitored runtimes should feed the log through
// (internal/provclient is the matching client). Sessioned (v2) clients
// get exactly-once delivery: replayed batches are recognised by the
// durable session table and re-acked instead of re-appended, with the
// dedup window per session set by -dedup-window and the session
// population capped by -max-sessions. The same listener serves the
// binary read path — typed queries with cursor pagination and a Follow
// mode streaming new records as they commit (remote replication and
// off-box audit; provclient.Query is the client side), redacted under
// the same -hide policy as HTTP. Shutdown drains the listener — every
// request read before the signal is committed and acked, and every
// live follow ends with a resume cursor.
//
// Disclosure policies (-hide) are applied at query time per requesting
// observer, so the stored log remains complete while each observer sees
// only what the policy allows.
//
// Authentication (docs/security.md) is built in and on by default: provd
// refuses to serve cleartext unless -insecure is passed explicitly. With
// -tls-cert/-tls-key both surfaces serve TLS; adding -tls-ca demands a
// verified client certificate on every connection (mutual TLS), and
// -auth-map binds each authenticated identity — certificate CN/SAN, or
// a bearer/wire token in the dev shape — to an enforced grant: the
// principals it may append as, the observer its reads are redacted for
// (?observer= is coerced to it), and whether it may pull snapshot
// transfers (the replica role). With enforcement on, disclosure
// policies become a real access-control boundary instead of an
// honest-observer convention.
//
// Replica mode (-replica-of leader:7710) turns the daemon into a read
// replica: the store is bootstrapped from the leader's snapshot, kept
// current over the binary follow stream (internal/replica), and the
// whole read surface — log, audit, principals, binary queries and
// follows — serves locally. Appends are refused: HTTP writes redirect
// to -leader-http when set (503 naming the leader otherwise), and the
// binary listener rejects batches with the leader's address. /healthz
// reports the role and applied sequence; /metrics gains
// provd_replica_lag_records, provd_replica_lag_seconds and the other
// replication gauges. See docs/operations.md, "Running a read replica".
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/auth"
	"repro/internal/cluster"
	"repro/internal/ingest"
	"repro/internal/provd"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/trust"
)

// coordinatorConfig carries the already-resolved flag state into
// coordinator mode.
type coordinatorConfig struct {
	addr       string
	ingestAddr string
	grace      time.Duration
	idlePark   time.Duration
	serverTLS  *tls.Config
	clientTLS  *tls.Config
	guard      *auth.Guard
	token      string
}

// runCoordinator is coordinator mode's whole lifecycle: no store, a
// routing client + fleet read plane over the partition leaders, the
// coordinator HTTP surface, and the binary listener serving merged
// queries, follows and the cluster map (appends and snapshots are
// refused toward the leaders). Never returns.
func runCoordinator(m *cluster.Map, cfg coordinatorConfig) {
	rc := cluster.NewClient(m, cluster.ClientOptions{TLS: cfg.clientTLS, Token: cfg.token})
	fleet := cluster.NewFleet(rc)
	// The coordinator's own map view (selfID "": owns nothing) lets the
	// binary listener answer map requests, so producers can bootstrap
	// from a coordinator address alone.
	node, err := cluster.NewNode(m, "")
	if err != nil {
		log.Fatalf("provd: %v", err)
	}
	httpc := &http.Client{Timeout: 30 * time.Second}
	if cfg.clientTLS != nil {
		httpc.Transport = &http.Transport{TLSClientConfig: cfg.clientTLS}
	}
	app := provd.NewCoordinator(fleet, provd.CoordinatorOptions{Client: httpc, Token: cfg.token})
	if cfg.guard != nil {
		app.SetAuth(cfg.guard)
	}
	log.Printf("provd: coordinator over %d leaders at epoch %d", len(m.Leaders), m.Epoch)

	var ing *ingest.Server
	if cfg.ingestAddr != "" {
		ing = ingest.NewServer(nil, ingest.Options{Engine: fleet, Cluster: node, TLS: cfg.serverTLS, Auth: cfg.guard, IdlePark: cfg.idlePark})
		bound, err := ing.Listen(cfg.ingestAddr)
		if err != nil {
			log.Fatalf("provd: binary listener: %v", err)
		}
		app.AttachIngest(ing)
		log.Printf("provd: binary read plane on %s", bound)
	}
	srv := &http.Server{Addr: cfg.addr, Handler: app, TLSConfig: cfg.serverTLS}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		if cfg.serverTLS != nil {
			log.Printf("provd: coordinator serving TLS on %s", cfg.addr)
			if err := srv.ListenAndServeTLS("", ""); !errors.Is(err, http.ErrServerClosed) {
				errc <- err
			}
			return
		}
		log.Printf("provd: coordinator serving on %s", cfg.addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		if ing != nil {
			ing.Close()
		}
		rc.Close()
		log.Fatalf("provd: %v", err)
	case <-ctx.Done():
	}
	log.Print("provd: coordinator shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("provd: shutdown: %v", err)
	}
	if ing != nil {
		ing.Close()
	}
	rc.Close()
	fmt.Println("provd: bye")
}

func main() {
	var (
		addr         = flag.String("addr", ":7709", "listen address (HTTP/JSON)")
		ingestAddr   = flag.String("ingest-addr", ":7710", "binary pipelined ingest listen address (empty disables)")
		dir          = flag.String("dir", "provd-data", "store root directory")
		stripes      = flag.Int("stripes", 16, "append lock stripes")
		segBytes     = flag.Int64("segment-bytes", 1<<20, "segment rotation threshold")
		fsync        = flag.Bool("fsync", true, "fsync every append")
		maxShards    = flag.Int("max-shards", 4096, "principal cap (one open segment fd per shard)")
		dedupWindow  = flag.Int("dedup-window", 1024, "per-session ingest dedup window (batch sequences remembered for replay re-acks)")
		maxSessions  = flag.Int("max-sessions", 1024, "live ingest session cap (least-recently-used session evicted beyond it)")
		grace        = flag.Duration("grace", 5*time.Second, "graceful shutdown timeout")
		idlePark     = flag.Duration("idle-park", 2*time.Second, "park idle binary-ingest connections (drop their goroutines and buffers) after this much read silence; negative disables parking")
		replicaOf    = flag.String("replica-of", "", "run as a read replica of this leader binary ingest address (e.g. leader:7710)")
		leaderHTTP   = flag.String("leader-http", "", "leader's HTTP base URL for write redirects in replica mode (e.g. http://leader:7709)")
		tlsCert      = flag.String("tls-cert", "", "PEM server certificate; both surfaces serve TLS when set")
		tlsKey       = flag.String("tls-key", "", "PEM private key for -tls-cert")
		tlsCA        = flag.String("tls-ca", "", "PEM CA pool; when set, every connection must present a client certificate it verifies (mutual TLS), and replica mode dials the leader with the server keypair as its client identity")
		authMap      = flag.String("auth-map", "", "identity map file (docs/operations.md): binds certificate names and tokens to principal/observer/role grants, enforced on both surfaces")
		insecure     = flag.Bool("insecure", false, "serve cleartext without TLS (dev/harness only; refused otherwise)")
		replicaToken = flag.String("replica-token", "", "auth token presented to the leader in replica mode (cleartext dev shape; with -tls-ca the client certificate is the identity)")
		clusterMap   = flag.String("cluster-map", "", "partition map file for a multi-leader fleet (docs/operations.md, \"Running a partitioned fleet\")")
		clusterSelf  = flag.String("cluster-self", "", "this node's leader ID in -cluster-map; empty with -cluster-map runs a storeless coordinator")
		clusterToken = flag.String("cluster-token", "", "auth token a coordinator presents to the partition leaders (cleartext dev shape)")
	)
	policy := trust.NewDisclosurePolicy()
	flag.Func("hide", "hide a principal's actions: subject or subject=obs1,obs2 (repeatable)", func(v string) error {
		subject, obs, found := strings.Cut(v, "=")
		if subject == "" {
			return errors.New("empty subject")
		}
		if !found || obs == "" {
			policy.HideFrom(subject)
			return nil
		}
		policy.HideFrom(subject, strings.Split(obs, ",")...)
		return nil
	})
	flag.Parse()

	// Secure by default: cleartext is a decision the operator must make
	// explicitly, never a silent fallback.
	if *tlsCert == "" && !*insecure {
		log.Fatal("provd: refusing to serve cleartext: set -tls-cert/-tls-key (and -tls-ca for mutual TLS), or pass -insecure explicitly")
	}
	var serverTLS, clientTLS *tls.Config
	if *tlsCert != "" {
		if *tlsKey == "" {
			log.Fatal("provd: -tls-cert needs -tls-key")
		}
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			log.Fatalf("provd: loading -tls-cert/-tls-key: %v", err)
		}
		serverTLS = &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS13}
		if *tlsCA != "" {
			pem, err := os.ReadFile(*tlsCA)
			if err != nil {
				log.Fatalf("provd: reading -tls-ca: %v", err)
			}
			pool := x509.NewCertPool()
			if !pool.AppendCertsFromPEM(pem) {
				log.Fatalf("provd: -tls-ca %s holds no PEM certificates", *tlsCA)
			}
			serverTLS.ClientCAs = pool
			serverTLS.ClientAuth = tls.RequireAndVerifyClientCert
			// Replica mode re-uses the server keypair as its client
			// identity toward the leader, verified against the same CA —
			// one keypair per node, whichever way the connection points.
			clientTLS = &tls.Config{Certificates: []tls.Certificate{cert}, RootCAs: pool, MinVersion: tls.VersionTLS13}
		}
	}
	var guard *auth.Guard
	if *authMap != "" {
		m, err := auth.LoadMap(*authMap)
		if err != nil {
			log.Fatalf("provd: loading -auth-map: %v", err)
		}
		guard = auth.NewGuard(m)
	}

	// Partition-fleet modes (docs/operations.md, "Running a partitioned
	// fleet"): with -cluster-map and -cluster-self this node is one
	// partition leader — an ordinary provd that additionally refuses
	// batches for principals it does not own and serves the map over the
	// wire. With -cluster-map alone it is a storeless coordinator: the
	// merged read plane and routed write plane over the whole fleet.
	var node *cluster.Node
	if *clusterSelf != "" && *clusterMap == "" {
		log.Fatal("provd: -cluster-self needs -cluster-map")
	}
	if *clusterMap != "" {
		m, err := cluster.LoadFile(*clusterMap)
		if err != nil {
			log.Fatalf("provd: loading -cluster-map: %v", err)
		}
		if *clusterSelf == "" {
			runCoordinator(m, coordinatorConfig{
				addr: *addr, ingestAddr: *ingestAddr, grace: *grace, idlePark: *idlePark,
				serverTLS: serverTLS, clientTLS: clientTLS, guard: guard, token: *clusterToken,
			})
			return
		}
		if *replicaOf != "" {
			log.Fatal("provd: a partition leader cannot also be a replica; run replicas per partition without -cluster-self")
		}
		node, err = cluster.NewNode(m, *clusterSelf)
		if err != nil {
			log.Fatalf("provd: %v", err)
		}
		log.Printf("provd: partition leader %q at epoch %d (%d leaders)", *clusterSelf, m.Epoch, len(m.Leaders))
	}

	st, err := store.Open(*dir, store.Options{
		Stripes: *stripes, SegmentBytes: *segBytes, Fsync: *fsync, MaxShards: *maxShards,
		SessionWindow: *dedupWindow, MaxSessions: *maxSessions,
	})
	if err != nil {
		log.Fatalf("provd: opening store: %v", err)
	}
	stats := st.Stats()
	log.Printf("provd: store %s recovered: %d records, %d shards, next seq %d",
		*dir, stats.Records, stats.Principals, stats.NextSeq)

	app := provd.NewServer(st, policy)
	if guard != nil {
		app.SetAuth(guard)
		log.Printf("provd: enforcing %d identities from %s", guard.Map.Len(), *authMap)
	}
	if node != nil {
		app.SetCluster(node)
	}
	var rep *replica.Replicator
	if *replicaOf != "" {
		rep = replica.New(st, *replicaOf, replica.Options{Logf: log.Printf, TLS: clientTLS, Token: *replicaToken})
		rep.Start()
		app.SetReplica(rep, *leaderHTTP)
		log.Printf("provd: replica of %s (applied seq %d)", *replicaOf, st.NextSeq())
	}
	var ing *ingest.Server
	if *ingestAddr != "" {
		// Share the HTTP app's query engine: both read surfaces apply
		// one policy and accumulate one set of counters. In replica mode
		// the listener still serves queries, follows and snapshots — a
		// replica can seed further replicas — but refuses appends.
		iopts := ingest.Options{Engine: app.Engine(), ReadOnly: rep != nil, LeaderAddr: *replicaOf, TLS: serverTLS, Auth: guard, IdlePark: *idlePark}
		if node != nil {
			iopts.Cluster = node
		}
		ing = ingest.NewServer(st, iopts)
		bound, err := ing.Listen(*ingestAddr)
		if err != nil {
			if rep != nil {
				rep.Stop()
			}
			st.Close()
			log.Fatalf("provd: binary ingest listener: %v", err)
		}
		log.Printf("provd: binary ingest on %s", bound)
	}
	app.AttachIngest(ing)
	srv := &http.Server{Addr: *addr, Handler: app, TLSConfig: serverTLS}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if serverTLS != nil {
			log.Printf("provd: serving TLS on %s", *addr)
			if err := srv.ListenAndServeTLS("", ""); !errors.Is(err, http.ErrServerClosed) {
				errc <- err
			}
			return
		}
		log.Printf("provd: serving on %s", *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		if ing != nil {
			ing.Close()
		}
		if rep != nil {
			rep.Stop()
		}
		st.Close()
		log.Fatalf("provd: %v", err)
	case <-ctx.Done():
	}
	log.Print("provd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("provd: shutdown: %v", err)
	}
	if ing != nil {
		// Drain the binary path before closing the store: every batch a
		// client managed to get onto the wire is committed and acked.
		ing.Close()
	}
	if rep != nil {
		// Stop replication after the listeners: the store must not close
		// under a mid-flight apply, and the durable high-water is the
		// restart's resume point.
		rep.Stop()
	}
	if err := st.Close(); err != nil {
		log.Printf("provd: closing store: %v", err)
	}
	fmt.Println("provd: bye")
}
