// Command provlog works with logs and the information order of §3 of the
// paper: it compares logs under ≼, computes the Definition-2 denotation of
// annotated values, and checks a value's provenance against a log
// (Definition 3 correctness).
//
// Usage:
//
//	provlog le      -l LOG -r LOG              decide  l ≼ r
//	provlog denote  -v NAME -prov PROVENANCE   print ⟦v:κ⟧
//	provlog correct -v NAME -prov PROVENANCE -log LOG
//	provlog audit   -v NAME -prov PROVENANCE [-rate p=0.x ...]
//
// Logs use the surface syntax  a.snd(m, v); (b.rcv(m, v) | 0).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/denote"
	"repro/internal/logs"
	"repro/internal/parser"
	"repro/internal/syntax"
	"repro/internal/trust"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd, args := os.Args[1], os.Args[2:]; cmd {
	case "le":
		err = cmdLe(args)
	case "denote":
		err = cmdDenote(args)
	case "correct":
		err = cmdCorrect(args)
	case "audit":
		err = cmdAudit(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "provlog: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "provlog:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: provlog <command> [flags]

commands:
  le       decide the information order l ≼ r between two logs
  denote   print the Definition-2 denotation of an annotated value
  correct  check ⟦v:κ⟧ ≼ log (Definition 3)
  audit    trust-score and blame report for an annotated value`)
}

func cmdLe(args []string) error {
	fs := flag.NewFlagSet("le", flag.ExitOnError)
	l := fs.String("l", "", "left log")
	r := fs.String("r", "", "right log")
	fs.Parse(args)
	lh, err := parser.ParseLog(*l)
	if err != nil {
		return fmt.Errorf("left: %w", err)
	}
	rh, err := parser.ParseLog(*r)
	if err != nil {
		return fmt.Errorf("right: %w", err)
	}
	fmt.Printf("l <= r : %v\n", logs.Le(lh, rh))
	fmt.Printf("r <= l : %v\n", logs.Le(rh, lh))
	return nil
}

func parseValue(name, prov string) (syntax.AnnotatedValue, error) {
	k, err := parser.ParseProv(prov)
	if err != nil {
		return syntax.AnnotatedValue{}, fmt.Errorf("provenance: %w", err)
	}
	return syntax.Annot(syntax.Chan(name), k), nil
}

func cmdDenote(args []string) error {
	fs := flag.NewFlagSet("denote", flag.ExitOnError)
	v := fs.String("v", "v", "plain value name")
	prov := fs.String("prov", "", "provenance literal")
	fs.Parse(args)
	av, err := parseValue(*v, *prov)
	if err != nil {
		return err
	}
	fmt.Println(denote.Denote(av))
	return nil
}

func cmdCorrect(args []string) error {
	fs := flag.NewFlagSet("correct", flag.ExitOnError)
	v := fs.String("v", "v", "plain value name")
	prov := fs.String("prov", "", "provenance literal")
	logSrc := fs.String("log", "0", "global log")
	fs.Parse(args)
	av, err := parseValue(*v, *prov)
	if err != nil {
		return err
	}
	l, err := parser.ParseLog(*logSrc)
	if err != nil {
		return fmt.Errorf("log: %w", err)
	}
	phi := denote.Denote(av)
	fmt.Println("denotation:", phi)
	if logs.Le(phi, l) {
		fmt.Println("correct: the log justifies this provenance")
	} else {
		fmt.Println("INCORRECT: the log does not justify this provenance")
	}
	return nil
}

// rateFlags collects repeated -rate principal=x flags.
type rateFlags map[string]float64

func (r rateFlags) String() string { return fmt.Sprint(map[string]float64(r)) }

func (r rateFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want principal=rating, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	r[name] = f
	return nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	v := fs.String("v", "v", "plain value name")
	prov := fs.String("prov", "", "provenance literal")
	rates := rateFlags{}
	fs.Var(rates, "rate", "principal=rating (repeatable)")
	fs.Parse(args)
	av, err := parseValue(*v, *prov)
	if err != nil {
		return err
	}
	pol := trust.NewPolicy()
	for p, f := range rates {
		pol.Rate(p, f)
	}
	fmt.Print(core.Audit(av, pol))
	return nil
}
