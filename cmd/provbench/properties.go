package main

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/gen"
	"repro/internal/logs"
	"repro/internal/monitor"
	"repro/internal/semantics"
)

// weaken mirrors the information-reducing transformations used by the
// property tests: the result is ≼ the input by construction.
func weaken(rng *rand.Rand, l logs.Log, freshID *int) logs.Log {
	switch rng.Intn(4) {
	case 0:
		if p, ok := l.(*logs.Pre); ok {
			return p.Rest
		}
		return l
	case 1:
		return &logs.Comp{L: l, R: l}
	case 2:
		if p, ok := l.(*logs.Pre); ok {
			if q, ok := p.Rest.(*logs.Pre); ok {
				return logs.Compose(logs.Prefix(p.Act, q.Rest), logs.Prefix(q.Act, q.Rest))
			}
		}
		return l
	default:
		if p, ok := l.(*logs.Pre); ok {
			if (p.Act.Kind == logs.Snd || p.Act.Kind == logs.Rcv) && p.Act.A.Kind == logs.TName {
				*freshID++
				act := p.Act
				act.A = logs.VarT("w" + strconv.Itoa(*freshID))
				return logs.Prefix(act, p.Rest)
			}
		}
		return l
	}
}

// expP1 — Proposition 1: ≼ is reflexive and transitive on generated logs
// (antisymmetry holds up to information equality; strict weakenings that
// drop an action are never mutually related).
func expP1() {
	cfg := gen.Default()
	const n = 400
	reflexOK, soundOK, transOK, strictOK := 0, 0, 0, 0
	for seed := int64(0); seed < n; seed++ {
		rng := rand.New(rand.NewSource(seed))
		phi := cfg.Log(rng)
		if logs.Le(phi, phi) {
			reflexOK++
		}
		fresh := 0
		w1 := weaken(rng, phi, &fresh)
		w2 := weaken(rng, w1, &fresh)
		if logs.Le(w1, phi) && logs.Le(w2, w1) {
			soundOK++
		}
		if logs.Le(w2, phi) {
			transOK++
		}
		if p, ok := phi.(*logs.Pre); ok {
			if !logs.Le(phi, p.Rest) {
				strictOK++
			}
		} else {
			strictOK++
		}
	}
	row("logs", fmt.Sprint(n))
	row("reflexive", fmt.Sprint(reflexOK))
	row("weakening sound", fmt.Sprint(soundOK))
	row("transitive chains", fmt.Sprint(transOK))
	row("strictness (φ ⋠ tail φ)", fmt.Sprint(strictOK))
	check("Proposition 1 evidence", reflexOK == n && soundOK == n && transOK == n && strictOK == n)
}

// expP2 — Proposition 2: M →m M' iff |M| → |M'|, tested as step-set
// equality along random monitored runs.
func expP2() {
	cfg := gen.Default()
	const n = 300
	bad := 0
	for seed := int64(0); seed < n; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := monitor.New(cfg.System(rng))
		for step := 0; step < 12; step++ {
			ms := monitor.Steps(m)
			ps := semantics.Steps(m.Erase())
			if len(ms) != len(ps) {
				bad++
				break
			}
			if len(ms) == 0 {
				break
			}
			i := rng.Intn(len(ms))
			if ms[i].Next.Erase().Canon() != ps[i].Next.Canon() {
				bad++
				break
			}
			m = ms[i].Next
		}
	}
	row("systems", fmt.Sprint(n))
	row("correspondence failures", fmt.Sprint(bad))
	check("Proposition 2 evidence", bad == 0)
}

// expP3 — Proposition 3: the paper's counterexample, machine-checked, plus
// a sweep showing completeness generally breaks after one step.
func expP3() {
	m := monitor.New(mustSys(`a[m!(v)] || b[m?(any as x).0]`))
	before := monitor.HasCompleteProvenance(m)
	m1 := monitor.Steps(m)[0].Next
	after := monitor.HasCompleteProvenance(m1)
	row("paper counterexample", fmt.Sprintf("complete before: %v", before),
		fmt.Sprintf("complete after send: %v", after))
	check("counterexample behaves as in the paper", before && !after)
	check("correctness still holds after the send (Thm 1)", monitor.HasCorrectProvenance(m1))

	cfg := gen.Default()
	attempts, violations := 0, 0
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mm := monitor.New(cfg.System(rng))
		if !monitor.HasCompleteProvenance(mm) {
			continue
		}
		steps := monitor.Steps(mm)
		if len(steps) == 0 {
			continue
		}
		next := steps[0].Next
		if len(monitor.Values(next)) == 0 {
			continue
		}
		attempts++
		if !monitor.HasCompleteProvenance(next) {
			violations++
		}
	}
	row("random systems exercised", fmt.Sprint(attempts))
	row("completeness broken after one step", fmt.Sprint(violations))
	check("incompleteness is generic", attempts > 0 && violations > 0)
}

// expTH1 — Theorem 1: the correctness invariant holds at every state of
// random monitored runs.
func expTH1() {
	cfg := gen.Default()
	const n = 300
	statesChecked, violations := 0, 0
	for seed := int64(0); seed < n; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := monitor.New(cfg.System(rng))
		for step := 0; step < 20; step++ {
			statesChecked++
			if _, bad := monitor.FirstIncorrectValue(m); bad {
				violations++
				break
			}
			steps := monitor.Steps(m)
			if len(steps) == 0 {
				break
			}
			m = steps[rng.Intn(len(steps))].Next
		}
	}
	row("systems", fmt.Sprint(n))
	row("monitored states checked", fmt.Sprint(statesChecked))
	row("correctness violations", fmt.Sprint(violations))
	check("Theorem 1 evidence", violations == 0)
}
