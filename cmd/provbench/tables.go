package main

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/logs"
	"repro/internal/monitor"
	"repro/internal/parser"
	"repro/internal/semantics"
	"repro/internal/syntax"
)

// expT1 — Table 1: the syntax is faithfully round-tripped by the printer
// and parser on generated systems (parse ∘ print = id up to structural
// congruence).
func expT1() {
	cfg := gen.Default()
	const n = 500
	okCount := 0
	for seed := int64(0); seed < n; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := cfg.System(rng)
		back, err := parser.ParseSystem(s.String())
		if err != nil {
			continue
		}
		if semantics.Normalize(s).Canon() == semantics.Normalize(back).Canon() {
			okCount++
		}
	}
	row("generated systems", fmt.Sprint(n))
	row("round-tripped identically", fmt.Sprint(okCount))
	check("parse/print round trip", okCount == n)
}

// expT2 — Table 2: each reduction rule fired on a minimal witness, with
// the provenance updates the rule prescribes.
func expT2() {
	// R-Send: a[m:κₘ⟨v:κᵥ⟩] → m⟨⟨v : a!κₘ;κᵥ⟩⟩
	km := syntax.Seq(syntax.InEvent("b", nil))
	kv := syntax.Seq(syntax.OutEvent("c", nil))
	send := syntax.Loc("a", syntax.Out(
		syntax.IdentVal(syntax.Chan("m"), km),
		syntax.IdentVal(syntax.Chan("v"), kv)))
	st := semantics.Steps(semantics.Normalize(send))
	got := st[0].Next.Messages[0].Payload[0].K
	want := kv.Push(syntax.OutEvent("a", km))
	row("R-Send", "a[m:(b?())!(v:(c!()))]", "->", st[0].Next.String())
	check("R-Send provenance = a!κₘ;κᵥ", got.Equal(want))

	// R-Recv: pattern-vetted input with stamp a?κₘ;κᵥ.
	recvSys, err := parser.ParseSystem(`b[m?(c!any;any as x).sink!(x)] || m<<v:(c!())>>`)
	if err != nil {
		panic(err)
	}
	st = semantics.Steps(semantics.Normalize(recvSys))
	check("R-Recv fires when κᵥ ⊨ π", len(st) == 1)
	cont := st[0].Next.Threads[0].Proc.(*syntax.Output)
	wantRecv := syntax.Seq(syntax.InEvent("b", nil), syntax.OutEvent("c", nil))
	check("R-Recv provenance = b?κₘ;κᵥ", cont.Args[0].Val.K.Equal(wantRecv))

	vetoSys, _ := parser.ParseSystem(`b[m?(c!any;any as x).sink!(x)] || m<<v:(d!())>>`)
	check("R-Recv blocked when κᵥ ⊭ π", len(semantics.Steps(semantics.Normalize(vetoSys))) == 0)

	// R-IfT / R-IfF: plain values compared, provenance ignored.
	ift, _ := parser.ParseSystem(`a[if m:(x!()) = m:(y?()) then yes!() else no!()]`)
	st = semantics.Steps(semantics.Normalize(ift))
	check("R-IfT ignores provenance", st[0].Label.Kind == semantics.ActIfT)
	iff, _ := parser.ParseSystem(`a[if m = n then yes!() else no!()]`)
	st = semantics.Steps(semantics.Normalize(iff))
	check("R-IfF on distinct names", st[0].Label.Kind == semantics.ActIfF)

	// R-Res/R-Par/R-Struct are absorbed by the normal form: reduction
	// under restriction and parallel context.
	ctx, _ := parser.ParseSystem(`new n. (a[n!(v)] || b[n?(any as x).0] || z[idle?(any as y).0])`)
	tr, quiet := semantics.RunToQuiescence(ctx, 10)
	check("reduction under restriction and parallel context", quiet && tr.Len() == 2)
}

// expT3 — Table 3: the satisfaction rules of the sample pattern language
// on the paper's own patterns.
func expT3() {
	cases := []struct {
		pat, prov string
		want      bool
	}{
		{"eps", "", true},
		{"eps", "a!()", false},
		{"any", "a!();b?()", true},
		{"c!any", "c!()", true},
		{"c!any", "d!()", false},
		{"c!any;any", "c!();x?();y!()", true}, // direct sender c
		{"c!any;any", "x?();c!()", false},
		{"any;d!any", "x?();y!();d!()", true}, // originated at d
		{"any;d!any", "d!();x?()", false},
		{"(c1+c3)!any;any", "c1!()", true}, // competition π₁
		{"(c1+c3)!any;any", "c2!()", false},
		{"c2!any;any", "c2!()", true}, // competition π₂
		{"(~-a)!any", "b!()", true},   // group difference
		{"(~-a)!any", "a!()", false},
		{"(a!any)*", "a!();a!();a!()", true}, // repetition
		{"(a!any)*", "a!();b!()", false},
		{"a!any / b?any", "b?()", true}, // alternation
		{"a!(c?any)", "a!(c?())", true}, // nested channel provenance
		{"a!(c?any)", "a!()", false},
	}
	bad := 0
	for _, c := range cases {
		p, err := parser.ParsePattern(c.pat)
		if err != nil {
			panic(err)
		}
		k, err := parser.ParseProv(c.prov)
		if err != nil {
			panic(err)
		}
		got := p.Matches(k)
		mark := "ok"
		if got != c.want {
			mark = "FAIL"
			bad++
		}
		row(fmt.Sprintf("%-18s", c.pat), fmt.Sprintf("%-18s", c.prov),
			fmt.Sprintf("|= %-5v (%s)", got, mark))
	}
	check("all satisfaction verdicts", bad == 0)
}

// expT4 — Table 4: monitored reduction preserves the plain semantics and
// grows the log by exactly the actions performed.
func expT4() {
	cfg := gen.Default()
	const n = 200
	mismatches := 0
	logMismatch := 0
	for seed := int64(0); seed < n; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := monitor.New(cfg.System(rng))
		for step := 0; step < 10; step++ {
			ms := monitor.Steps(m)
			ps := semantics.Steps(m.Erase())
			if len(ms) != len(ps) {
				mismatches++
				break
			}
			if len(ms) == 0 {
				break
			}
			i := rng.Intn(len(ms))
			before := logs.Size(m.Log)
			m = ms[i].Next
			if logs.Size(m.Log) <= before {
				logMismatch++
				break
			}
		}
	}
	row("systems", fmt.Sprint(n))
	row("step-set mismatches", fmt.Sprint(mismatches))
	row("non-growing logs", fmt.Sprint(logMismatch))
	check("monitored steps = plain steps (Prop 2 direction)", mismatches == 0)
	check("every step extends the log", logMismatch == 0)
}
