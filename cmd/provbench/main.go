// Command provbench regenerates every experiment in DESIGN.md §4 /
// EXPERIMENTS.md: the paper's tables (T1-T4), worked examples (E1-E3),
// meta-theoretic properties (P1-P3, TH1), overhead figures (F1-F4) and
// ablations/extensions (A1-A2, X1-X2).
//
// Usage:
//
//	provbench -exp T3          one experiment
//	provbench -exp E1,E2,E3    several
//	provbench                  all of them
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// experiment is one reproducible artifact.
type experiment struct {
	id    string
	title string
	run   func()
}

var experiments = []experiment{
	{"T1", "Table 1 — syntax round-trip", expT1},
	{"T2", "Table 2 — reduction rules on minimal witnesses", expT2},
	{"T3", "Table 3 — sample pattern language", expT3},
	{"T4", "Table 4 — monitored semantics mirrors plain semantics", expT4},
	{"E1", "§2.3.2 — authentication", expE1},
	{"E2", "§2.3.2 — auditing", expE2},
	{"E3", "§2.3.2 — photography competition", expE3},
	{"P1", "Proposition 1 — ≼ is a partial order", expP1},
	{"P2", "Proposition 2 — log erasure correspondence", expP2},
	{"P3", "Proposition 3 — completeness is not preserved", expP3},
	{"TH1", "Theorem 1 — correctness is preserved", expTH1},
	{"F1", "Figure — dynamic tracking overhead vs pipeline depth", expF1},
	{"F2", "Figure — pattern matching cost vs provenance length", expF2},
	{"F3", "Figure — ≼-checking cost vs log size", expF3},
	{"F4", "Figure — middleware throughput, in-proc vs TCP", expF4},
	{"A1", "Ablation — memoised vs naive matcher", expA1},
	{"A2", "Ablation — provenance truncation (depth-k)", expA2},
	{"X1", "Extension §5 — trust and adequacy", expX1},
	{"X2", "Extension §5 — static analysis vs dynamic runs", expX2},
	{"X3", "Extension — auditing under an unreliable network", expX3},
	{"L1", "Load — binary pipelined ingest vs HTTP/JSON single-record append", expL1},
	{"L2", "Load — filtered queries + live follow under concurrent binary ingest", expL2},
	{"L3", "Load — replication: replica bootstrap + follow catch-up under live ingest", expL3},
	{"L4", "Load — idle-fleet cost: parked connections, wake-to-ack latency", expL4},
	{"L5", "Load — partitioned fleet: 2-leader aggregate append throughput vs single leader", expL5},
	{"C1", "Cluster sim — seeded fault schedules vs the full invariant suite", expC1},
}

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.id] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "provbench: unknown experiments: %s\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.title)
		e.run()
		fmt.Println()
	}
}

// pass/fail helpers keep the report format uniform.
func check(label string, ok bool) {
	mark := "ok  "
	if !ok {
		mark = "FAIL"
	}
	fmt.Printf("  [%s] %s\n", mark, label)
}

func row(cols ...string) {
	fmt.Printf("  %s\n", strings.Join(cols, " | "))
}
