package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/semantics"
	"repro/internal/syntax"
)

// expE1 — authentication (§2.3.2): a[m(c!Any;Any as x).P] accepts only
// direct-from-c; b[m(Any;d!Any as y).Q] accepts only originated-at-d.
func expE1() {
	type scenario struct {
		title, src   string
		wantA, wantB bool
	}
	scenarios := []scenario{
		{"c sends directly", `
			a[m?(c!any;any as x).gotA!(x)] ||
			b[m?(any;d!any as y).gotB!(y)] ||
			c[m!(data)]`, true, false},
		{"d originates, c forwards", `
			a[m?(c!any;any as x).gotA!(x)] ||
			b[m?(any;d!any as y).gotB!(y)] ||
			d[relay!(data)] || c[relay?(any as z).m!(z)]`, true, true},
		{"imposter e sends directly", `
			a[m?(c!any;any as x).gotA!(x)] ||
			b[m?(any;d!any as y).gotB!(y)] ||
			e[m!(data)]`, false, false},
	}
	for _, sc := range scenarios {
		prog := core.MustLoad(sc.src)
		res := prog.Explore(3000, 40)
		var aCan, bCan bool
		for _, n := range res.States {
			for _, m := range n.Messages {
				if m.Chan == "gotA" {
					aCan = true
				}
				if m.Chan == "gotB" {
					bCan = true
				}
			}
		}
		row(fmt.Sprintf("%-28s", sc.title),
			fmt.Sprintf("a accepts: %-5v (want %v)", aCan, sc.wantA),
			fmt.Sprintf("b accepts: %-5v (want %v)", bCan, sc.wantB))
		check(sc.title, aCan == sc.wantA && bCan == sc.wantB)
	}
}

// expE2 — auditing (§2.3.2): the misrouted value reaches c carrying
// exactly c?ε;s!ε;s?ε;a!ε, naming the principals to investigate.
func expE2() {
	prog := core.MustLoad(`
		a[m!(v)] ||
		s[m?(any as x).n1!(x)] ||
		c[n1?(any as x).p!(x)] ||
		b[n2?(any as x).q!(x)]
	`)
	rep := prog.Run(core.Options{Deterministic: true})
	k, ok := core.ProvenanceOf(rep.Final, "v")
	if !ok {
		check("value delivered", false)
		return
	}
	atDelivery := k.Tail() // drop the final re-send stamp by c
	want := syntax.Seq(
		syntax.InEvent("c", nil), syntax.OutEvent("s", nil),
		syntax.InEvent("s", nil), syntax.OutEvent("a", nil),
	)
	row("derived provenance", atDelivery.String())
	row("paper's provenance", want.String())
	check("provenance matches c?;s!;s?;a!", atDelivery.Equal(want))
	ps := atDelivery.Principals()
	check("involved principals are exactly {a,s,c}",
		len(ps) == 3 && ps["a"] && ps["s"] && ps["c"])
	check("final state has correct provenance (Thm 1)", rep.Correct)
}

// expE3 — photography competition (§2.3.2): final provenances match the
// paper's closed forms κ'eᵢ and κ'rᵢ.
func expE3() {
	prog := core.MustLoad(`
		c1[sub!(e1) | pub?(any;c1!any as x, any as y).done1!(x, y)] ||
		c2[sub!(e2) | pub?(any;c2!any as x, any as y).done2!(x, y)] ||
		c3[sub!(e3) | pub?(any;c3!any as x, any as y).done3!(x, y)] ||
		o[*( sub?{ ((c1+c3)!any;any as x).in1!(x) [] (c2!any;any as x).in2!(x) }
		   | res?(any as y, any as z).*(pub!(y, z)) )] ||
		j1[*(in1?(any as x).(new r. res!(x, r)))] ||
		j2[*(in2?(any as x).(new r. res!(x, r)))]
	`)
	m := monitor.New(prog.Sys)
	results := map[string][]syntax.AnnotatedValue{}
	rng := rand.New(rand.NewSource(2009))
	for step := 0; step < 2000 && len(results) < 3; step++ {
		steps := monitor.Steps(m)
		if len(steps) == 0 {
			break
		}
		pick := steps[rng.Intn(len(steps))]
		for _, st := range steps {
			if st.Label.Kind == semantics.ActRecv {
				pick = st
				break
			}
		}
		m = pick.Next
		for _, th := range m.Sys.Threads {
			if o, ok := th.Proc.(*syntax.Output); ok && !o.Chan.IsVar {
				name := o.Chan.Val.V.Name
				if name == "done1" || name == "done2" || name == "done3" {
					vals := make([]syntax.AnnotatedValue, len(o.Args))
					for i, a := range o.Args {
						vals[i] = a.Val
					}
					results[name] = vals
				}
			}
		}
	}
	routes := map[string][2]string{
		"done1": {"c1", "j1"}, "done2": {"c2", "j2"}, "done3": {"c3", "j1"},
	}
	for _, ch := range []string{"done1", "done2", "done3"} {
		vals, ok := results[ch]
		if !ok {
			check(ch+" delivered", false)
			continue
		}
		ci, judge := routes[ch][0], routes[ch][1]
		wantE := syntax.Seq(
			syntax.InEvent(ci, nil), syntax.OutEvent("o", nil),
			syntax.InEvent("o", nil), syntax.OutEvent(judge, nil),
			syntax.InEvent(judge, nil), syntax.OutEvent("o", nil),
			syntax.InEvent("o", nil), syntax.OutEvent(ci, nil),
		)
		wantR := syntax.Seq(
			syntax.InEvent(ci, nil), syntax.OutEvent("o", nil),
			syntax.InEvent("o", nil), syntax.OutEvent(judge, nil),
		)
		row(ch, "entry κ' =", vals[0].K.String())
		row(ch, "rating κ' =", vals[1].K.String())
		check(ch+" entry matches paper κ'e", vals[0].K.Equal(wantE))
		check(ch+" rating matches paper κ'r", vals[1].K.Equal(wantR))
	}
	_, bad := monitor.FirstIncorrectValue(m)
	check("final monitored state correct (Thm 1)", !bad)
}
