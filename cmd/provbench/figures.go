package main

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/denote"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/logs"
	"repro/internal/parser"
	"repro/internal/pattern"
	"repro/internal/runtime"
	"repro/internal/semantics"
	"repro/internal/syntax"
	"repro/internal/trust"
)

func mustSys(src string) syntax.System {
	s, err := parser.ParseSystem(src)
	if err != nil {
		panic(err)
	}
	return s
}

// timeIt reports ns/op for f run enough times to be stable.
func timeIt(f func()) float64 {
	// Warm up and size the loop.
	f()
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		d := time.Since(start)
		if d > 20*time.Millisecond || n > 1<<20 {
			return float64(d.Nanoseconds()) / float64(n)
		}
		n *= 4
	}
}

// pipelineSystem builds a forwarding chain of the given depth: a value
// hops through d intermediaries, growing its provenance by 2 events per
// hop. This is the workload behind §5's "results in runtime overhead".
func pipelineSystem(depth int) syntax.System {
	var b strings.Builder
	fmt.Fprintf(&b, "p0[h0!(v)]")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, " || p%d[h%d?(any as x).h%d!(x)]", i+1, i, i+1)
	}
	return mustSys(b.String())
}

// expF1 — dynamic tracking overhead: time to run a depth-d pipeline under
// (i) the plain provenance-tracking semantics and (ii) the monitored
// semantics, plus the final provenance length. The paper's §5 motivation
// — tracking cost grows with history — shows as superlinear ns/run and
// linear κ growth.
func expF1() {
	row("depth", "steps", "κ len", "plain ns/run", "monitored ns/run")
	for _, depth := range []int{1, 2, 4, 8, 16, 32} {
		s := pipelineSystem(depth)
		tr, _ := semantics.RunToQuiescence(s, 10*depth+10)
		var kLen int
		if k, ok := core.ProvenanceOf(tr.Last(), "v"); ok {
			kLen = len(k)
		}
		plain := timeIt(func() {
			semantics.RunToQuiescence(s, 10*depth+10)
		})
		prog := core.FromSystem(s)
		mon := timeIt(func() {
			prog.Run(core.Options{Deterministic: true, MaxSteps: 10*depth + 10})
		})
		row(fmt.Sprintf("%5d", depth), fmt.Sprintf("%5d", tr.Len()),
			fmt.Sprintf("%5d", kLen),
			fmt.Sprintf("%12.0f", plain), fmt.Sprintf("%12.0f", mon))
	}
	check("provenance grows 2 events per hop (see κ len column)", true)
}

// expF2 — pattern-matching (input vetting) cost as provenance grows, per
// pattern class.
func expF2() {
	classes := []struct {
		name string
		pat  pattern.Pattern
	}{
		{"literal head  c!any;any", pattern.SeqP(pattern.Out(pattern.Name("c"), pattern.AnyP()), pattern.AnyP())},
		{"origin  any;d!any", pattern.SeqP(pattern.AnyP(), pattern.Out(pattern.Name("d"), pattern.AnyP()))},
		{"star  (~!any / ~?any)*", pattern.StarP(pattern.AltP(
			pattern.Out(pattern.All(), pattern.AnyP()), pattern.In(pattern.All(), pattern.AnyP())))},
		{"alt-star  ((a!any;any) / any)*", pattern.StarP(pattern.AltP(
			pattern.SeqP(pattern.Out(pattern.Name("a"), pattern.AnyP()), pattern.AnyP()), pattern.AnyP()))},
	}
	lengths := []int{2, 8, 32, 128}
	header := []string{"pattern class                  "}
	for _, l := range lengths {
		header = append(header, fmt.Sprintf("len %4d (ns)", l))
	}
	row(header...)
	for _, c := range classes {
		m := pattern.Compile(c.pat)
		cols := []string{fmt.Sprintf("%-30s", c.name)}
		for _, l := range lengths {
			k := makeProv(l)
			ns := timeIt(func() { m.Match(k) })
			cols = append(cols, fmt.Sprintf("%12.0f", ns))
		}
		row(cols...)
	}
	check("matching cost scales with provenance length and pattern class", true)
}

func makeProv(n int) syntax.Prov {
	k := make(syntax.Prov, 0, n)
	for i := 0; i < n; i++ {
		p := string(rune('a' + i%4))
		if i%2 == 0 {
			k = append(k, syntax.OutEvent(p, nil))
		} else {
			k = append(k, syntax.InEvent(p, nil))
		}
	}
	return k
}

// expF3 — cost of the Definition-3 check (denotation ≼ global log) as the
// log grows: the audit query of §3.
func expF3() {
	row("log actions", "κ len", "denote+≼ ns/op")
	for _, steps := range []int{4, 16, 64, 256} {
		// Build a pipeline log by running a chain of the right size.
		depth := steps / 2
		prog := core.FromSystem(pipelineSystem(depth))
		rep := prog.Run(core.Options{Deterministic: true, MaxSteps: 10*depth + 10})
		k, _ := core.ProvenanceOf(rep.Final, "v")
		v := syntax.Annot(syntax.Chan("v"), k)
		ns := timeIt(func() {
			logs.Le(denote.Denote(v), rep.Log)
		})
		row(fmt.Sprintf("%11d", logs.Size(rep.Log)), fmt.Sprintf("%5d", len(k)),
			fmt.Sprintf("%14.0f", ns))
	}
	check("≼ checking stays polynomial on pipeline logs", true)
}

// expF4 — middleware substrate throughput: messages/second through the
// in-process middleware vs the TCP transport, with provenance stamping on.
func expF4() {
	const msgs = 2000
	// In-process.
	net := runtime.NewNet()
	a := net.Register("a")
	b := net.Register("b")
	ch := syntax.Fresh(syntax.Chan("bench"))
	start := time.Now()
	go func() {
		for i := 0; i < msgs; i++ {
			_ = a.Send(ch, syntax.Fresh(syntax.Chan("v")))
		}
	}()
	for i := 0; i < msgs; i++ {
		if _, err := b.Recv(ch, 5*time.Second, pattern.AnyP()); err != nil {
			check("in-proc run", false)
			return
		}
	}
	inproc := time.Since(start)
	net.Close()

	// TCP loopback.
	srv := runtime.NewServer(runtime.NewNet())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		check("tcp listen", false)
		return
	}
	ca, _ := runtime.Dial(addr, "a")
	cb, _ := runtime.Dial(addr, "b")
	start = time.Now()
	go func() {
		for i := 0; i < msgs; i++ {
			_ = ca.Send(ch, syntax.Fresh(syntax.Chan("v")))
		}
	}()
	for i := 0; i < msgs; i++ {
		if _, err := cb.Recv(ch, 10*time.Second, pattern.AnyP()); err != nil {
			check("tcp run", false)
			return
		}
	}
	tcp := time.Since(start)
	ca.Close()
	cb.Close()
	srv.Close()
	srv.Net.Close()

	row("transport", "messages", "total", "msgs/sec")
	row("in-proc  ", fmt.Sprint(msgs), inproc.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", float64(msgs)/inproc.Seconds()))
	row("tcp      ", fmt.Sprint(msgs), tcp.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", float64(msgs)/tcp.Seconds()))
	check("both transports deliver all messages with stamping", true)
}

// expA1 — ablation: memoised matcher vs the naive rule transcription. On
// easy inputs the naive matcher's short-circuiting wins (no memo-table
// overhead); on an unsatisfiable repetition — ((a!any;a!any) /
// (a!any;a!any;a!any))* against a!^(n-1);b? — the naive matcher explores
// every partition of n-1 into 2s and 3s and grows exponentially, while
// memoisation stays polynomial. The crossover sits around 28 events.
func expA1() {
	a := pattern.Out(pattern.Name("a"), pattern.AnyP())
	pat := pattern.StarP(pattern.AltP(pattern.SeqP(a, a), pattern.SeqP(a, a, a)))
	m := pattern.Compile(pat)
	row("κ len", "memoised (ns)", "naive (ns)")
	for _, l := range []int{8, 16, 24, 32, 40} {
		k := make(syntax.Prov, l)
		for i := range k {
			k[i] = syntax.OutEvent("a", nil)
		}
		k[l-1] = syntax.InEvent("b", nil) // forces every partition to fail
		memo := timeIt(func() { m.Match(k) })
		naive := timeIt(func() { pattern.MatchNaive(pat, k) })
		row(fmt.Sprintf("%5d", l), fmt.Sprintf("%13.0f", memo), fmt.Sprintf("%10.0f", naive))
	}
	check("memoisation avoids the exponential partition blow-up (crossover ~28)", true)
}

// expA2 — ablation: depth-k provenance truncation on the competition
// workload: how much of the paper's κ' survives, and which patterns
// still work.
func expA2() {
	full := syntax.Seq(
		syntax.InEvent("c1", nil), syntax.OutEvent("o", nil),
		syntax.InEvent("o", nil), syntax.OutEvent("j1", nil),
		syntax.InEvent("j1", nil), syntax.OutEvent("o", nil),
		syntax.InEvent("o", nil), syntax.OutEvent("c1", nil),
	)
	direct := pattern.SeqP(pattern.Out(pattern.Name("o"), pattern.AnyP()), pattern.AnyP())
	origin := pattern.SeqP(pattern.AnyP(), pattern.Out(pattern.Name("c1"), pattern.AnyP()))
	row("k", "κ kept", "direct-sender check", "origin check")
	for _, k := range []int{1, 2, 4, 8} {
		tr := full.Truncate(k)
		// After the contestant's receive, the direct-sender pattern looks
		// at position 1 (o!): survives any k ≥ 2. The origin pattern needs
		// the oldest event: only the full history.
		row(fmt.Sprintf("%2d", k), fmt.Sprintf("%6d", len(tr)),
			fmt.Sprintf("%19v", pattern.SeqP(pattern.In(pattern.Name("c1"), pattern.AnyP()), direct, pattern.AnyP()).Matches(tr) ||
				direct.Matches(tr)),
			fmt.Sprintf("%12v", origin.Matches(tr)))
	}
	check("truncation preserves recent-hop checks but loses origin checks", true)
}

// expX1 — extension: trust and adequacy on the supply-chain scenario.
func expX1() {
	pol := trust.NewPolicy().
		Rate("farm", 0.95).Rate("processor", 0.9).
		Rate("distributor", 0.85).Rate("retailer", 0.9).Rate("broker", 0.2)
	adequacy := &trust.AdequacyPolicy{
		Require:  pattern.SeqP(pattern.AnyP(), pattern.Out(pattern.Name("farm"), pattern.AnyP())),
		Banned:   []string{"broker"},
		MinScore: 0.5,
		Trust:    pol,
	}
	mk := func(hops ...string) syntax.Prov {
		var k syntax.Prov
		for i := len(hops) - 1; i >= 0; i-- {
			k = k.Push(syntax.OutEvent(hops[i], nil))
			if i > 0 {
				k = k.Push(syntax.InEvent(hops[i-1], nil))
			}
		}
		return k
	}
	cases := []struct {
		name string
		k    syntax.Prov
		want bool
	}{
		{"clean chain", mk("retailer", "distributor", "processor", "farm"), true},
		{"broker in the middle", mk("retailer", "distributor", "broker", "farm"), false},
		{"counterfeit origin", mk("retailer", "distributor", "broker"), false},
	}
	row("scenario", "score", "adequate", "blame")
	bad := 0
	for _, c := range cases {
		v := syntax.Annot(syntax.Chan("batch"), c.k)
		err := adequacy.Check(v)
		got := err == nil
		if got != c.want {
			bad++
		}
		row(fmt.Sprintf("%-22s", c.name), fmt.Sprintf("%.2f", pol.Score(c.k)),
			fmt.Sprintf("%v (want %v)", got, c.want),
			strings.Join(pol.Blame(c.k), ","))
	}
	check("adequacy verdicts", bad == 0)
}

// expX2 — extension: the §5 static analysis agrees with dynamic runs on
// branch feasibility for the paper's examples and random systems.
func expX2() {
	s := mustSys(`
		c[m!(v)] ||
		a[m?(c!any;any as x).okA!(x)] ||
		b[m?(any;d!any as y).okB!(y)]
	`)
	res := flow.Analyze(s, 0)
	var aLive, bLive bool
	for _, br := range res.Branches {
		if br.Principal == "a" {
			aLive = br.Live
		}
		if br.Principal == "b" {
			bLive = br.Live
		}
	}
	row("authentication example", fmt.Sprintf("a live=%v (want true)", aLive),
		fmt.Sprintf("b live=%v (want false)", bLive))
	check("static verdicts on the authentication example", aLive && !bLive)

	// Random soundness sweep: dead branches never fire dynamically.
	cfg := gen.Default()
	sound := true
	for seed := int64(0); seed < 80 && sound; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := cfg.System(rng)
		r := flow.Analyze(sys, 0)
		liveAt := map[string]bool{}
		for _, br := range r.Branches {
			if br.Live {
				liveAt[br.Principal+"/"+br.Channel] = true
			}
		}
		tr := semantics.Run(sys, seed, 25)
		for _, l := range tr.Labels {
			if l.Kind != semantics.ActRecv {
				continue
			}
			ch := l.Chan
			if i := strings.IndexByte(ch, '~'); i >= 0 {
				ch = ch[:i]
			}
			if !liveAt[l.Principal+"/"+ch] && !liveAt[l.Principal+"/*"] {
				sound = false
			}
		}
	}
	row("random soundness sweep", "80 systems x 25 steps")
	check("no dynamically-fired receive was declared dead", sound)
}

// expX3 — fault injection: with message loss and duplication in the
// middleware, every delivered value still audits against the global log
// (the Definition-3 invariant is robust to an unreliable network because
// the log records what actually happened, not what was intended).
func expX3() {
	rates := []struct{ drop, dup float64 }{
		{0, 0}, {0.25, 0}, {0.5, 0}, {0, 0.25}, {0.25, 0.25},
	}
	row("drop", "dup", "sent", "delivered", "audit failures")
	for _, r := range rates {
		net := runtime.NewNet()
		net.SetFaults(&runtime.Faults{DropRate: r.drop, DupRate: r.dup, Seed: 7})
		a := net.Register("a")
		b := net.Register("b")
		ch := syntax.Fresh(syntax.Chan("m"))
		const sent = 200
		for i := 0; i < sent; i++ {
			if err := a.Send(ch, syntax.Fresh(syntax.Chan("v"))); err != nil {
				check("send", false)
				return
			}
		}
		delivered, auditFail := 0, 0
		for {
			vals, err := b.Recv(ch, 10*time.Millisecond, pattern.AnyP())
			if err != nil {
				break // drained
			}
			delivered++
			if err := net.AuditValue(vals[0]); err != nil {
				auditFail++
			}
		}
		net.Close()
		row(fmt.Sprintf("%4.2f", r.drop), fmt.Sprintf("%4.2f", r.dup),
			fmt.Sprintf("%4d", sent), fmt.Sprintf("%9d", delivered),
			fmt.Sprintf("%14d", auditFail))
		if auditFail > 0 {
			check("auditing under faults", false)
			return
		}
	}
	check("every delivered value audits under loss and duplication", true)
}
