package main

// C1 — deterministic cluster-simulation soak: compile seeded scenarios
// (workload + fault schedule fully derived from each seed) and run them
// against real in-process clusters, checking the full invariant set —
// exactly-once vs a no-fault control, monotone spine, replica
// convergence, Definition-3 audit parity, session-dedup soundness —
// after every schedule. This is the experiment behind the simulation
// claim: the system survives sustained kill/drop/gap/partition
// schedules, and any schedule that breaks it reproduces from one
// printed seed (REPRO_SEED=<seed> go test ./internal/harness).
//
// With -load-out the soak's throughput and survival counts are merged
// into the same BENCH_results.json artifact as L1-L3.

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/testutil"
)

var (
	simSeeds = flag.Int("sim-seeds", 12, "C1: seeded fault schedules per soak")
	simSeed  = flag.Int64("sim-seed", 20090817, "C1: base seed the schedules derive from (the go test sweep's default)")
)

func expC1() {
	seeds := testutil.DeriveSeeds(*simSeed, *simSeeds)
	var (
		records, replays, gaps, stalls, boots uint64
		faults, acks, chunks, kills           int
		failed                                int
	)
	start := time.Now()
	for _, seed := range seeds {
		sc := scenario.Compile(harness.SweepSpec(seed), seed)
		res, err := harness.Run(sc, harness.Options{Fsync: *loadFsync})
		if err != nil {
			failed++
			fmt.Printf("  FAIL %v (replay: REPRO_SEED=%d go test ./internal/harness)\n", err, seed)
			continue
		}
		fmt.Printf("  %s\n", res)
		records += res.Records
		replays += res.Replays
		gaps += res.Gaps
		stalls += res.StallBreaks
		boots += res.Bootstraps
		for _, n := range res.Faults {
			faults += n
		}
		acks += res.AcksDropped
		chunks += res.ChunksDropped
		kills += res.LeaderKills + res.ReplicaKills
	}
	elapsed := time.Since(start)
	perSec := float64(len(seeds)-failed) / elapsed.Seconds()

	fmt.Printf("  soak: %d schedules in %v (%.2f scenarios/s, fsync=%v)\n",
		len(seeds), elapsed.Round(time.Millisecond), perSec, *loadFsync)
	fmt.Printf("  survived: %d faults (%d acks + %d chunks dropped, %d kills), %d replays, %d gaps, %d stall breaks, %d bootstraps, %d records\n",
		faults, acks, chunks, kills, replays, gaps, stalls, boots, records)
	check("every seeded schedule converged with all invariants green", failed == 0)
	check("the soak exercised real faults", faults > 0 && acks > 0)

	if *loadOut != "" {
		entries := map[string]float64{
			"C1/scenarios_per_second": perSec,
			"C1/faults_survived":      float64(faults),
			"C1/records_committed":    float64(records),
			"C1/replays_survived":     float64(replays),
			"C1/schedules_failed":     float64(failed),
		}
		if err := mergeBenchResults(*loadOut, entries); err != nil {
			fmt.Println("  merging", *loadOut+":", err)
			return
		}
		fmt.Printf("  merged %d entries into %s\n", len(entries), *loadOut)
	}
}
