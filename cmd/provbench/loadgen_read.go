package main

// L2 — read/mixed load generator: filtered queries and a live follow
// running against the binary read path while the binary ingest path
// sustains concurrent append load on the same store. This is the
// experiment behind the query-engine claim: the read surface serves
// bounded, cursor-stable pages whose cost tracks the result size, and
// a follower keeps up with the live log, without either stalling
// ingestion.
//
// With -load-out the measurements are merged into a BENCH_results.json
// artifact (the same layout cmd/benchjson emits), so the read-path
// trajectory is recorded beside the ingest benchmarks.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/logs"
	"repro/internal/provclient"
	"repro/internal/store"
	"repro/internal/wire"
)

var (
	loadQueryWorkers = flag.Int("load-query-workers", 2, "L2: concurrent filtered-query workers")
	loadOut          = flag.String("load-out", "", "L2: merge results into this BENCH_results.json (empty: report only)")
)

func expL2() {
	dir, err := os.MkdirTemp("", "provbench-read-*")
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{Fsync: *loadFsync})
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer st.Close()
	srv := ingest.NewServer(st, ingest.Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer srv.Close()
	wc := provclient.New(addr, provclient.Options{Conns: *loadConns}) // writers
	defer wc.Close()
	rc := provclient.New(addr, provclient.Options{Conns: 1}) // readers (queries dial their own conns)
	defer rc.Close()

	// Seed some history so the first queries have pages to serve.
	seed := make([]logs.Action, 2048)
	for j := range seed {
		seed[j] = loadAct("s", 0, j%2, j)
	}
	if _, err := wc.AppendBatch(seed); err != nil {
		fmt.Println("  seed:", err)
		return
	}

	// Live follower: counts every record the read path streams while
	// the workload runs.
	follower, err := rc.Query(wire.QuerySpec{Follow: true})
	if err != nil {
		fmt.Println("  follow:", err)
		return
	}
	var followed atomic.Uint64
	followDone := make(chan error, 1)
	go func() {
		for {
			chunk, err := follower.Next()
			if err != nil {
				followDone <- err
				return
			}
			followed.Add(uint64(len(chunk)))
		}
	}()

	// Concurrent drives: binary batched ingest + filtered tail queries.
	var wg sync.WaitGroup
	var ingestRes, queryRes loadResult
	var ingestErr, queryErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		ingestRes, ingestErr = drive(*loadConns, *loadDur, func(w, i int) (int, error) {
			batch := make([]logs.Action, *loadBatch)
			for j := range batch {
				batch[j] = loadAct("w", w, i%2, j)
			}
			if _, err := wc.AppendBatch(batch); err != nil {
				return 0, err
			}
			return len(batch), nil
		})
	}()
	go func() {
		defer wg.Done()
		queryRes, queryErr = drive(*loadQueryWorkers, *loadDur, func(w, i int) (int, error) {
			recs, _, err := rc.QueryAll(wire.QuerySpec{
				Channel: fmt.Sprintf("m%d", i%2), Tail: true, Limit: 256,
			})
			if err != nil {
				return 0, err
			}
			return len(recs), nil
		})
	}()
	wg.Wait()
	if ingestErr != nil {
		fmt.Println("  ingest drive:", ingestErr)
		return
	}
	if queryErr != nil {
		fmt.Println("  query drive:", queryErr)
		return
	}

	// Let the follower catch the tail, then stop it.
	total := uint64(st.Len())
	caughtUp := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if followed.Load() >= total {
			caughtUp = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	follower.Cancel()
	<-followDone
	follower.Close()

	fmt.Printf("  %d ingest workers (%d-action batches), %d query workers (filtered tail 256), %v, fsync=%v\n",
		*loadConns, *loadBatch, *loadQueryWorkers, *loadDur, *loadFsync)
	row("path             ", "ops     ", "records/s ", "req p50   ", "req p99")
	row(fmt.Sprintf("binary ingest      %8d  %9.0f  %9v  %9v",
		ingestRes.reqs, ingestRes.perSec(), ingestRes.p50.Round(time.Microsecond), ingestRes.p99.Round(time.Microsecond)))
	row(fmt.Sprintf("filtered queries   %8d  %9.0f  %9v  %9v",
		queryRes.reqs, queryRes.perSec(), queryRes.p50.Round(time.Microsecond), queryRes.p99.Round(time.Microsecond)))
	fmt.Printf("  follow: %d of %d records streamed live\n", followed.Load(), total)
	check("filtered queries served pages while ingest sustained load", queryRes.reqs > 0 && ingestRes.records > 0)
	check("every query page stayed result-bounded (256 records)", queryRes.records == queryRes.reqs*256)
	check("follower caught up with the live log after ingest stopped", caughtUp)

	if *loadOut != "" {
		entries := map[string]float64{
			"L2/ingest_ns_per_record":   float64(*loadDur) / max(float64(ingestRes.records), 1),
			"L2/query_filtered_p50_ns":  float64(queryRes.p50),
			"L2/query_filtered_p99_ns":  float64(queryRes.p99),
			"L2/follow_records_total":   float64(followed.Load()),
			"L2/query_pages_per_second": queryRes.perSec() / 256,
		}
		if err := mergeBenchResults(*loadOut, entries); err != nil {
			fmt.Println("  merging", *loadOut+":", err)
			return
		}
		fmt.Printf("  merged %d entries into %s\n", len(entries), *loadOut)
	}
}

// mergeBenchResults folds L2 measurements into a cmd/benchjson artifact,
// replacing same-named entries and preserving everything else in the
// file.
func mergeBenchResults(path string, entries map[string]float64) error {
	art := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &art); err != nil {
			return fmt.Errorf("existing artifact unreadable: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	benches, _ := art["benchmarks"].([]any)
	kept := benches[:0:0]
	for _, b := range benches {
		if m, ok := b.(map[string]any); ok {
			name, _ := m["name"].(string)
			if _, replaced := entries[name]; replaced {
				continue // replaced below
			}
		}
		kept = append(kept, b)
	}
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names) // stable artifact ordering keeps diffs reviewable
	for _, name := range names {
		kept = append(kept, map[string]any{"name": name, "samples": 1, "ns_per_op": entries[name]})
	}
	art["benchmarks"] = kept
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
