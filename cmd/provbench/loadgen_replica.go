package main

// L3 — replication load generator: a replica bootstraps from a seeded
// leader and follows it while the binary ingest path keeps appending.
// This is the experiment behind the read-replica claim: a replica
// catches a leader under sustained write load (snapshot bulk transfer
// plus follow-stream deltas), converges to a bit-identical log, and
// holds steady-state lag near zero — so reads scale horizontally
// without weakening the audit's verdicts.
//
// With -load-out the measurements are merged into the same
// BENCH_results.json artifact as L1/L2.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/ingest"
	"repro/internal/logs"
	"repro/internal/provclient"
	"repro/internal/replica"
	"repro/internal/store"
)

var loadSeed = flag.Int("load-seed", 20000, "L3: records seeded on the leader before the replica bootstraps")

func expL3() {
	dir, err := os.MkdirTemp("", "provbench-replica-*")
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer os.RemoveAll(dir)
	leaderSt, err := store.Open(filepath.Join(dir, "leader"), store.Options{Fsync: *loadFsync})
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer leaderSt.Close()
	srv := ingest.NewServer(leaderSt, ingest.Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer srv.Close()
	wc := provclient.New(addr, provclient.Options{Conns: *loadConns})
	defer wc.Close()

	// Seed history so the bootstrap ships real bulk, not an empty meta.
	batch := make([]logs.Action, 0, 1024)
	for i := 0; i < *loadSeed; i++ {
		batch = append(batch, loadAct("s", i%7, i%2, i))
		if len(batch) == cap(batch) || i == *loadSeed-1 {
			if _, err := wc.AppendBatch(batch); err != nil {
				fmt.Println("  seed:", err)
				return
			}
			batch = batch[:0]
		}
	}
	seeded := leaderSt.NextSeq()

	// Ingest keeps running while the replica bootstraps and follows.
	driveDone := make(chan struct{})
	var ingestErr error
	go func() {
		defer close(driveDone)
		_, ingestErr = drive(*loadConns, *loadDur, func(w, i int) (int, error) {
			b := make([]logs.Action, *loadBatch)
			for j := range b {
				b[j] = loadAct("w", w, i%2, j)
			}
			if _, err := wc.AppendBatch(b); err != nil {
				return 0, err
			}
			return len(b), nil
		})
	}()

	repSt, err := store.Open(filepath.Join(dir, "replica"), store.Options{Fsync: *loadFsync})
	if err != nil {
		fmt.Println("  replica store:", err)
		return
	}
	defer repSt.Close()
	rep := replica.New(repSt, addr, replica.Options{PollInterval: 50 * time.Millisecond})
	start := time.Now()
	rep.Start()
	defer rep.Stop()

	// Bootstrap catch-up: time for the replica to reach the seeded
	// high-water while the leader keeps committing past it.
	var bootstrapTime time.Duration
	for deadline := time.Now().Add(*loadDur + 30*time.Second); ; {
		if repSt.NextSeq() >= seeded {
			bootstrapTime = time.Since(start)
			break
		}
		if time.Now().After(deadline) {
			fmt.Printf("  bootstrap stuck at seq %d of %d\n", repSt.NextSeq(), seeded)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}

	<-driveDone
	if ingestErr != nil {
		fmt.Println("  ingest drive:", ingestErr)
		return
	}

	// Convergence: the replica drains the follow stream to the leader's
	// final high-water; steady-state lag is what remains after a poll.
	leaderFinal := leaderSt.NextSeq()
	converged := false
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		if repSt.NextSeq() >= leaderFinal {
			converged = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	catchUp := time.Since(start)
	status := rep.Status()

	// Bit-identical spot check across the whole spine: page the two logs
	// in lockstep and compare record for record.
	identical := repSt.NextSeq() == leaderFinal
	var from uint64
	for identical {
		l := leaderSt.ScanGlobal(from, leaderFinal, 4096)
		r := repSt.ScanGlobal(from, leaderFinal, 4096)
		if len(l) != len(r) {
			identical = false
			break
		}
		if len(l) == 0 {
			break
		}
		for i := range l {
			if l[i] != r[i] {
				identical = false
				break
			}
		}
		from = l[len(l)-1].Seq + 1
	}

	applied := status.BootstrapRecords + status.AppliedRecords
	fmt.Printf("  leader: %d seeded + %d live records (%d ingest workers, %d-action batches, %v, fsync=%v)\n",
		seeded, leaderFinal-seeded, *loadConns, *loadBatch, *loadDur, *loadFsync)
	row("phase            ", "records  ", "elapsed   ", "records/s")
	row(fmt.Sprintf("bootstrap          %8d  %9v  %9.0f",
		status.BootstrapRecords, bootstrapTime.Round(time.Millisecond), float64(status.BootstrapRecords)/bootstrapTime.Seconds()))
	row(fmt.Sprintf("total catch-up     %8d  %9v  %9.0f",
		applied, catchUp.Round(time.Millisecond), float64(applied)/catchUp.Seconds()))
	fmt.Printf("  follow: %d batches, %d records applied; gaps %d (accepted %d); steady-state lag %d records\n",
		status.AppliedBatches, status.AppliedRecords, status.Gaps, status.GapsAccepted, status.LagRecords)
	check("replica converged to the leader's high-water under live ingest", converged)
	check("replica log is bit-identical to the leader's", identical)
	check("exactly one snapshot bootstrap served the history", status.Bootstraps == 1)
	check("replication never diverged", !status.Diverged)

	if *loadOut != "" {
		entries := map[string]float64{
			"L3/bootstrap_ns_per_record":    float64(bootstrapTime) / max(float64(status.BootstrapRecords), 1),
			"L3/catchup_records_per_second": float64(applied) / catchUp.Seconds(),
			"L3/steady_state_lag_records":   float64(status.LagRecords),
			"L3/follow_applied_records":     float64(status.AppliedRecords),
		}
		if err := mergeBenchResults(*loadOut, entries); err != nil {
			fmt.Println("  merging", *loadOut+":", err)
			return
		}
		fmt.Printf("  merged %d entries into %s\n", len(entries), *loadOut)
	}
}
