//go:build linux

package main

import "syscall"

// raiseFDLimit tries to raise the soft RLIMIT_NOFILE to at least need
// (raising the hard limit too when the process may) and returns the
// soft limit in effect afterwards. L4 sizes its connection fleet to
// whatever this yields.
func raiseFDLimit(need uint64) uint64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0
	}
	if rl.Cur >= need {
		return rl.Cur
	}
	want := rl
	want.Cur = need
	if want.Max < need {
		want.Max = need // needs CAP_SYS_RESOURCE; falls through when denied
	}
	if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want) == nil {
		return want.Cur
	}
	if rl.Max > rl.Cur {
		want = syscall.Rlimit{Cur: rl.Max, Max: rl.Max}
		if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want) == nil {
			return want.Cur
		}
	}
	return rl.Cur
}
