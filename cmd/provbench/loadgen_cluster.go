package main

// L5 — partitioned-fleet load generator: the same append workload
// driven through the internal/cluster routing client against a single
// leader and against a 2-leader partitioned fleet, reporting the
// aggregate committed-throughput ratio.
//
// Deployed, each leader is its own node: the fleet's aggregate
// throughput is the sum of what its partitions commit concurrently on
// disjoint hardware. This bench runs where only one node's worth of
// hardware exists (one core, one disk), so co-locating both leaders
// would measure nothing but that core being split; instead it measures
// each partition at full tilt in turn — the routed producers drive one
// leader's principals per phase, through the same splitting client and
// live 2-leader map — and sums the per-partition rates. The single-
// leader baseline serves the whole working set alone on the same
// hardware. The ratio then certifies the partition layer itself: maps,
// routing, and per-leader sessions add no cross-partition
// serialization, so a partition's capacity survives fleet assembly and
// aggregate capacity is leaders x one leader's rate.
//
// With -load-out the measurements are merged into the BENCH_results.json
// artifact as L5/* entries alongside L1-L4.

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/ingest"
	"repro/internal/logs"
	"repro/internal/provclient"
	"repro/internal/query"
	"repro/internal/store"
)

var (
	clusterDur   = flag.Duration("cluster-dur", time.Second, "L5: drive duration per fleet size")
	clusterConns = flag.Int("cluster-conns", 4, "L5: concurrent producers")
	clusterBatch = flag.Int("cluster-batch", 16, "L5: actions per append")
	clusterSet   = flag.Int("cluster-principals", 2048, "L5: principal working set")
	clusterFsync = flag.Bool("cluster-fsync", true, "L5: fsync every store commit (provd's production default)")
)

// benchFleet is an in-process partitioned fleet: n cluster-aware
// leaders and the validated map naming them.
type benchFleet struct {
	leaders []*ingest.Server
	stores  []*store.Store
	nodes   []*cluster.Node
	m       *cluster.Map
}

func startBenchFleet(dir string, n int) (*benchFleet, error) {
	// Nodes need a map before listeners exist; boot on placeholder
	// addresses (ownership hashes only leader IDs), then install the
	// real map once every listener is up.
	boot := make([]cluster.Leader, n)
	for i := range boot {
		boot[i] = cluster.Leader{ID: fmt.Sprintf("L%d", i), Ingest: "boot.invalid:0"}
	}
	bm := &cluster.Map{Epoch: 1, Leaders: boot}
	if err := bm.Validate(); err != nil {
		return nil, err
	}
	f := &benchFleet{}
	real := make([]cluster.Leader, n)
	for i := 0; i < n; i++ {
		st, err := store.Open(filepath.Join(dir, fmt.Sprintf("leader%d", i)), store.Options{Fsync: *clusterFsync})
		if err != nil {
			f.close()
			return nil, err
		}
		f.stores = append(f.stores, st)
		node, err := cluster.NewNode(bm, boot[i].ID)
		if err != nil {
			f.close()
			return nil, err
		}
		f.nodes = append(f.nodes, node)
		ing := ingest.NewServer(st, ingest.Options{Engine: query.NewEngine(st, nil), Cluster: node})
		addr, err := ing.Listen("127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, err
		}
		f.leaders = append(f.leaders, ing)
		real[i] = cluster.Leader{ID: boot[i].ID, Ingest: addr}
	}
	m := &cluster.Map{Epoch: 1, Leaders: real}
	if err := m.Validate(); err != nil {
		f.close()
		return nil, err
	}
	for _, nd := range f.nodes {
		if err := nd.SetMap(m); err != nil {
			f.close()
			return nil, err
		}
	}
	f.m = m
	return f, nil
}

func (f *benchFleet) close() {
	for _, ing := range f.leaders {
		ing.Close()
	}
	for _, st := range f.stores {
		st.Close()
	}
}

func benchPrincipal(i int) string { return fmt.Sprintf("tenant%05d", i) }

// isShardCapReject matches the server's typed shard-cap refusal as the
// client sees it: a ServerError (no retry, nothing written) carrying
// store.ErrShardCap's message.
func isShardCapReject(err error) bool {
	var se *provclient.ServerError
	return errors.As(err, &se) && strings.Contains(se.Msg, "shard limit")
}

// warm registers the working set before the timed window: one action
// per principal, so the measurement sees steady-state appends, not
// shard creation (mkdir + directory fsyncs).
func warm(cl *cluster.Client) (accepted int, err error) {
	const workers = 8
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		acc int
	)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := w; p < *clusterSet; p += workers {
				a := logs.SndAct(benchPrincipal(p), logs.NameT("warm"), logs.NameT("v"))
				switch err := cl.AppendBatch([]logs.Action{a}); {
				case err == nil:
					mu.Lock()
					acc++
					mu.Unlock()
				case !isShardCapReject(err):
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return acc, nil
}

// drivePartition drives the given principals flat out through the
// routing client for one timed window.
func drivePartition(cl *cluster.Client, principals []string) (loadResult, error) {
	w := *clusterConns
	return drive(w, *clusterDur, func(worker, i int) (int, error) {
		// Each producer strides the principal set; every batch is one
		// principal's pipeline flush, routed whole to its owner.
		p := principals[(worker+i*w)%len(principals)]
		batch := make([]logs.Action, *clusterBatch)
		for j := range batch {
			batch[j] = logs.SndAct(p, logs.NameT(fmt.Sprintf("m%d", i)), logs.NameT(fmt.Sprintf("v%d", j)))
		}
		if err := cl.AppendBatch(batch); err != nil {
			return 0, err
		}
		return len(batch), nil
	})
}

// driveFleet boots an n-leader fleet, warms the working set, and
// measures each partition's committed append rate in its own phase.
// The returned results are per leader, in leader order.
func driveFleet(dir string, n int) ([]loadResult, error) {
	fl, err := startBenchFleet(dir, n)
	if err != nil {
		return nil, err
	}
	defer fl.close()
	cl := cluster.NewClient(fl.m, cluster.ClientOptions{Conns: 1})
	defer cl.Close()
	if _, err := warm(cl); err != nil {
		return nil, err
	}
	owned := make([][]string, n)
	for p := 0; p < *clusterSet; p++ {
		name := benchPrincipal(p)
		o := fl.m.Owner(name)
		owned[o] = append(owned[o], name)
	}
	results := make([]loadResult, n)
	for k := 0; k < n; k++ {
		if len(owned[k]) == 0 {
			return nil, fmt.Errorf("leader %d owns no principals of %d", k, *clusterSet)
		}
		if results[k], err = drivePartition(cl, owned[k]); err != nil {
			return nil, err
		}
	}
	return results, nil
}

func expL5() {
	dir, err := os.MkdirTemp("", "provbench-cluster-*")
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer os.RemoveAll(dir)

	singles, err := driveFleet(filepath.Join(dir, "single"), 1)
	if err != nil {
		fmt.Println("  single leader:", err)
		return
	}
	single := singles[0]
	fleet, err := driveFleet(filepath.Join(dir, "fleet"), 2)
	if err != nil {
		fmt.Println("  2-leader fleet:", err)
		return
	}

	fmt.Printf("  %d principals, %d producers, %v per partition phase, %d actions per append, fsync=%v\n",
		*clusterSet, *clusterConns, *clusterDur, *clusterBatch, *clusterFsync)
	row("partition        ", "records ", "records/s ", "req p50   ", "req p99")
	row(fmt.Sprintf("single (whole set) %8d  %9.0f  %9v  %9v",
		single.records, single.perSec(), single.p50.Round(time.Microsecond), single.p99.Round(time.Microsecond)))
	agg := 0.0
	for k, r := range fleet {
		agg += r.perSec()
		row(fmt.Sprintf("fleet L%d           %8d  %9.0f  %9v  %9v",
			k, r.records, r.perSec(), r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond)))
	}
	ratio := 0.0
	if single.perSec() > 0 {
		ratio = agg / single.perSec()
	}
	fmt.Printf("  aggregate fleet rate %.0f records/s — %.2fx the single leader\n", agg, ratio)
	check("2-leader partitioned fleet sustains >= 1.7x the aggregate append throughput of a single leader", ratio >= 1.7)

	if *loadOut != "" {
		entries := map[string]float64{
			"L5/single_leader_ns_per_record": 1e9 / max(single.perSec(), 1),
			"L5/fleet2_ns_per_record":        1e9 / max(agg, 1),
			"L5/fleet2_speedup_x":            ratio,
		}
		if err := mergeBenchResults(*loadOut, entries); err != nil {
			fmt.Println("  merging", *loadOut+":", err)
			return
		}
		fmt.Printf("  merged %d entries into %s\n", len(entries), *loadOut)
	}
}
