//go:build !linux

package main

// raiseFDLimit is a no-op where RLIMIT_NOFILE can't portably be
// adjusted; report "plenty" and let dial errors surface naturally.
func raiseFDLimit(need uint64) uint64 { return need }
