package main

// L4 — idle-fleet cost: the monitored-middleware model only pays off
// if provenance capture is effectively free for the monitored system,
// and most monitored connections are idle most of the time. This
// experiment establishes what an idle producer costs the listener:
// it parks a fleet of N established binary-protocol connections
// (IdlePark), then measures
//
//   - goroutines with the whole fleet parked (epoll parking keeps this
//     flat in N; the portable sentry fallback is one per conn),
//   - parked heap per connection (upper bound: both halves of every
//     loopback conn live in this process),
//   - append p50/p99 for one *active* producer running against the
//     parked fleet (the fleet must not tax the hot path),
//   - wake-to-ack p99 across a sample of parked connections (the
//     latency an idle producer pays for its first batch after a lull).
//
// With -load-out the measurements are merged into the BENCH_results.json
// artifact as L4/... entries alongside L1-L3.

import (
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/logs"
	"repro/internal/store"
	"repro/internal/wire"
)

var (
	idleConns = flag.Int("idle-conns", 2000, "L4: parked connections (2 fds each; the fd limit is raised when possible)")
	idleWakes = flag.Int("idle-wakes", 500, "L4: parked connections sampled for wake-to-ack latency")
)

// idleClient is the minimal raw binary-protocol producer for L4: one
// socket, stream codec released between appends so an idle client side
// stays as light as the server side under test.
type idleClient struct {
	c   net.Conn
	enc *wire.StreamEncoder
	dec *wire.StreamDecoder
	e   *wire.Encoder
}

func dialIdleClient(addr string) (*idleClient, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &idleClient{c: c, enc: wire.NewStreamEncoder(c), dec: wire.NewStreamDecoder(c), e: wire.NewEncoder()}, nil
}

func (ic *idleClient) append(id uint64, acts []logs.Action) error {
	ic.e.Reset()
	ic.e.IngestBatch(id, acts)
	if err := ic.enc.Envelope(ic.e.Bytes()); err != nil {
		return err
	}
	if err := ic.enc.Flush(); err != nil {
		return err
	}
	ic.c.SetReadDeadline(time.Now().Add(30 * time.Second))
	env, err := ic.dec.Envelope()
	if err != nil {
		return err
	}
	m, err := wire.DecodeIngest(env)
	if err != nil {
		return err
	}
	if m.Op != wire.OpIngestAck {
		return fmt.Errorf("got op %#x (%q), want ack", m.Op, m.Msg)
	}
	ic.enc.ReleaseBuffers()
	ic.dec.ReleaseBuffers()
	return nil
}

func expL4() {
	n := *idleConns
	need := uint64(2*n + 512)
	if have := raiseFDLimit(need); have < need {
		n = int((have - 512) / 2)
		fmt.Printf("  fd limit %d: shrinking fleet %d -> %d conns\n", have, *idleConns, n)
	}
	if n <= 0 {
		fmt.Println("  fd limit leaves no room for a fleet; skipping")
		return
	}

	dir, err := os.MkdirTemp("", "provbench-idle-*")
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{Fsync: *loadFsync})
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer st.Close()
	srv := ingest.NewServer(st, ingest.Options{IdlePark: 5 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer srv.Close()

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapBefore := ms.HeapInuse
	goroutinesBefore := runtime.NumGoroutine()

	// Establish the fleet: every conn appends one batch (so it has been
	// identified and through a commit round), then goes idle.
	fleet := make([]*idleClient, n)
	idx := make(chan int)
	errCh := make(chan error, n)
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				ic, err := dialIdleClient(addr)
				if err == nil {
					fleet[i] = ic
					err = ic.append(1, []logs.Action{loadAct("i", i%256, 0, 0)})
				}
				if err != nil {
					errCh <- fmt.Errorf("conn %d: %w", i, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	defer func() {
		for _, ic := range fleet {
			if ic != nil {
				ic.c.Close()
			}
		}
	}()
	select {
	case err := <-errCh:
		fmt.Println("  fleet:", err)
		return
	default:
	}

	deadline := time.Now().Add(2 * time.Minute)
	for srv.Stats().Parked < uint64(n) {
		if time.Now().After(deadline) {
			fmt.Printf("  only %d/%d conns parked; aborting\n", srv.Stats().Parked, n)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	parkedGoroutines := runtime.NumGoroutine()
	heapPerConn := 0.0
	if ms.HeapInuse > heapBefore {
		heapPerConn = float64(ms.HeapInuse-heapBefore) / float64(n)
	}

	// One active producer against the parked fleet.
	active, err := dialIdleClient(addr)
	if err != nil {
		fmt.Println("  active conn:", err)
		return
	}
	defer active.c.Close()
	id := uint64(2)
	activeRes, err := drive(1, *loadDur, func(w, i int) (int, error) {
		batch := make([]logs.Action, *loadBatch)
		for j := range batch {
			batch[j] = loadAct("a", w, i, j)
		}
		id++
		if err := active.append(id, batch); err != nil {
			return 0, err
		}
		return len(batch), nil
	})
	if err != nil {
		fmt.Println("  active path:", err)
		return
	}

	// Wake a sample of the parked fleet, one batch each, and take the
	// latency distribution of wake-to-ack.
	sample := *idleWakes
	if sample > n {
		sample = n
	}
	wakes := make([]time.Duration, 0, sample)
	for i := 0; i < sample; i++ {
		ic := fleet[i*n/sample]
		t0 := time.Now()
		if err := ic.append(id+uint64(i)+1, []logs.Action{loadAct("w", i%256, i, 0)}); err != nil {
			fmt.Println("  wake path:", err)
			return
		}
		wakes = append(wakes, time.Since(t0))
		if (i+1)%64 == 0 {
			time.Sleep(10 * time.Millisecond) // let the sampled slice re-park behind us
		}
	}
	sort.Slice(wakes, func(i, j int) bool { return wakes[i] < wakes[j] })
	wakeP50, wakeP99 := wakes[len(wakes)/2], wakes[len(wakes)*99/100]

	stats := srv.Stats()
	fmt.Printf("  %d parked conns, IdlePark 5ms, active producer %v at %d-action batches\n", n, *loadDur, *loadBatch)
	row("measure                 ", "value")
	row(fmt.Sprintf("goroutines (idle fleet)   %8d (was %d before dialing)", parkedGoroutines, goroutinesBefore))
	row(fmt.Sprintf("parked heap per conn      %8.0f B", heapPerConn))
	row(fmt.Sprintf("active append p50/p99     %v / %v", activeRes.p50.Round(time.Microsecond), activeRes.p99.Round(time.Microsecond)))
	row(fmt.Sprintf("active records/s          %8.0f", activeRes.perSec()))
	row(fmt.Sprintf("wake-to-ack p50/p99       %v / %v (%d sampled)", wakeP50.Round(time.Microsecond), wakeP99.Round(time.Microsecond), sample))
	row(fmt.Sprintf("parks / wakes             %8d / %d", stats.Parks, stats.Wakes))
	check("parked fleet holds no per-connection goroutines (epoll parking)",
		parkedGoroutines < goroutinesBefore+n/10+64)
	check("active producer sustained load against the parked fleet", activeRes.records > 0)
	check("every sampled wake acked", len(wakes) == sample)

	if *loadOut != "" {
		entries := map[string]float64{
			"L4/parked_conns":               float64(n),
			"L4/parked_goroutines":          float64(parkedGoroutines),
			"L4/parked_heap_bytes_per_conn": heapPerConn,
			"L4/active_append_p99_ns":       float64(activeRes.p99),
			"L4/wake_to_ack_p50_ns":         float64(wakeP50),
			"L4/wake_to_ack_p99_ns":         float64(wakeP99),
		}
		if err := mergeBenchResults(*loadOut, entries); err != nil {
			fmt.Println("  merging", *loadOut+":", err)
			return
		}
		fmt.Printf("  merged %d entries into %s\n", len(entries), *loadOut)
	}
}
