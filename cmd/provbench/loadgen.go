package main

// L1 — ingest load generator: drives the HTTP/JSON single-record
// append path and the binary pipelined ingest path against the same
// store and reports the throughput/latency delta. This is the
// experiment behind the wire-format claim: the store can commit batches
// far faster than an HTTP/JSON round trip per record can feed it, so
// the ingest protocol, not the storage engine, sets the fleet-scale
// ceiling.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/logs"
	"repro/internal/provclient"
	"repro/internal/provd"
	"repro/internal/store"
)

var (
	loadDur   = flag.Duration("load-dur", time.Second, "L1: drive duration per path")
	loadConns = flag.Int("load-conns", 4, "L1: concurrent workers (and pool size)")
	loadBatch = flag.Int("load-batch", 256, "L1: actions per binary request")
	loadFsync = flag.Bool("load-fsync", false, "L1: fsync every store commit (provd's production default)")
)

// loadResult is one path's measurement.
type loadResult struct {
	records  uint64
	reqs     uint64
	elapsed  time.Duration
	p50, p99 time.Duration
}

func (r loadResult) perSec() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.records) / r.elapsed.Seconds()
}

// drive runs workers against one request function until the deadline,
// sampling per-request latency.
func drive(workers int, dur time.Duration, req func(worker, iter int) (int, error)) (loadResult, error) {
	var (
		records, reqs atomic.Uint64
		mu            sync.Mutex
		lats          []time.Duration
		firstErr      error
	)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []time.Duration
			for i := 0; time.Now().Before(deadline); i++ {
				t0 := time.Now()
				n, err := req(w, i)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
				records.Add(uint64(n))
				reqs.Add(1)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return loadResult{}, firstErr
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res := loadResult{records: records.Load(), reqs: reqs.Load(), elapsed: elapsed}
	if len(lats) > 0 {
		res.p50 = lats[len(lats)/2]
		res.p99 = lats[len(lats)*99/100]
	}
	return res, nil
}

func loadAct(path string, w, i, j int) logs.Action {
	return logs.SndAct(fmt.Sprintf("%s%d", path, w),
		logs.NameT(fmt.Sprintf("m%d", i)), logs.NameT(fmt.Sprintf("v%d", j)))
}

func expL1() {
	dir, err := os.MkdirTemp("", "provbench-load-*")
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{Fsync: *loadFsync})
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer st.Close()

	// HTTP/JSON single-record path: the real provd handler, loopback
	// TCP, keep-alive connections, one record per POST.
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	httpSrv := &http.Server{Handler: provd.NewServer(st, nil)}
	go httpSrv.Serve(httpLn)
	defer httpSrv.Close()
	url := "http://" + httpLn.Addr().String() + "/append"
	httpClient := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *loadConns}}
	httpRes, err := drive(*loadConns, *loadDur, func(w, i int) (int, error) {
		body, err := json.Marshal(map[string]any{
			"principal": fmt.Sprintf("h%d", w), "kind": "snd",
			"a": map[string]string{"name": fmt.Sprintf("m%d", i)},
			"b": map[string]string{"name": "v"},
		})
		if err != nil {
			return 0, err
		}
		resp, err := httpClient.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		var ack provd.AppendResponse
		err = json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("append status %d", resp.StatusCode)
		}
		return 1, nil
	})
	if err != nil {
		fmt.Println("  http path:", err)
		return
	}

	// Binary pipelined path: same store, framed batches, pooled
	// pipelined connections.
	ing := ingest.NewServer(st, ingest.Options{})
	addr, err := ing.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Println("  setup:", err)
		return
	}
	defer ing.Close()
	pc := provclient.New(addr, provclient.Options{Conns: *loadConns})
	defer pc.Close()
	binRes, err := drive(*loadConns, *loadDur, func(w, i int) (int, error) {
		batch := make([]logs.Action, *loadBatch)
		for j := range batch {
			batch[j] = loadAct("b", w, i, j)
		}
		if _, err := pc.AppendBatch(batch); err != nil {
			return 0, err
		}
		return len(batch), nil
	})
	if err != nil {
		fmt.Println("  binary path:", err)
		return
	}

	fmt.Printf("  %d workers, %v per path, %d actions per binary request, fsync=%v\n",
		*loadConns, *loadDur, *loadBatch, *loadFsync)
	row("path            ", "records ", "records/s ", "req p50   ", "req p99")
	row(fmt.Sprintf("http/json single  %8d  %9.0f  %9v  %9v",
		httpRes.records, httpRes.perSec(), httpRes.p50.Round(time.Microsecond), httpRes.p99.Round(time.Microsecond)))
	row(fmt.Sprintf("binary pipelined  %8d  %9.0f  %9v  %9v",
		binRes.records, binRes.perSec(), binRes.p50.Round(time.Microsecond), binRes.p99.Round(time.Microsecond)))
	ratio := 0.0
	if httpRes.perSec() > 0 {
		ratio = binRes.perSec() / httpRes.perSec()
	}
	fmt.Printf("  per-record throughput delta: %.1fx\n", ratio)
	check("binary pipelined path sustains >= 5x the per-record throughput of HTTP/JSON single-record append", ratio >= 5)
}
