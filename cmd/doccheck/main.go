// Command doccheck is the documentation gate CI runs on every PR
// (.github/workflows/ci.yml, job "docs"). It enforces the two
// documentation invariants the repo promises:
//
//  1. every Go package — internal/*, cmd/*, examples/* — carries a
//     package-level doc comment, so `go doc` is never empty;
//  2. every relative link in the markdown docs (README.md, docs/*.md,
//     ROADMAP.md, the example READMEs, …) resolves to a file or
//     directory that actually exists;
//  3. no stale operational claims: every command-line flag a doc's
//     flag table documents is declared by some command under cmd/,
//     and every provd_* metric name the docs mention is emitted
//     somewhere in the source tree. Docs drift worst exactly where
//     operators copy from — flag tables and metric names — so those
//     claims are checked against the code, not trusted.
//
// It prints one line per violation and exits non-zero if there are any.
//
//	go run ./cmd/doccheck [root]
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	violations = append(violations, checkPackageDocs(root)...)
	violations = append(violations, checkMarkdownLinks(root)...)
	violations = append(violations, checkStaleClaims(root)...)
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Printf("doccheck: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// skippedDir reports directories that hold no documented packages.
func skippedDir(name string) bool {
	return name == ".git" || name == "testdata" || strings.HasPrefix(name, ".")
}

// checkPackageDocs walks every directory containing Go files and
// requires a package doc comment on at least one non-test file.
func checkPackageDocs(root string) []string {
	var out []string
	fset := token.NewFileSet()
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if skippedDir(d.Name()) {
			return filepath.SkipDir
		}
		pkgs, err := parser.ParseDir(fset, path, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			out = append(out, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				out = append(out, fmt.Sprintf("%s: package %s has no package doc comment", path, name))
			}
		}
		return nil
	})
	return out
}

var (
	// flagDecl matches a flag definition in source: flag.String("name",
	// flag.Bool("name", flag.Func("name", …
	flagDecl = regexp.MustCompile(`flag\.\w+\("([a-z][a-z0-9-]*)"`)
	// flagClaim matches a documented flag in the first column of a
	// markdown table row: | `-name` … — anchored to the first column so
	// prose mentions of a flag mid-cell are not treated as table
	// entries.
	flagClaim = regexp.MustCompile("(?m)^\\|\\s*`-([a-z][a-z0-9-]*)")
	// metricClaim matches a provd metric name mentioned anywhere in a
	// doc; a trailing `*` (a family glob like provd_auth_*) simply ends
	// the token, leaving the family prefix to substring-match.
	metricClaim = regexp.MustCompile(`provd_[a-z0-9_]+`)
)

// checkStaleClaims verifies the docs' operational claims against the
// source tree: documented flags must be declared by a command,
// documented metric names must appear in the code that emits them.
func checkStaleClaims(root string) []string {
	var out []string

	// What the code provides: declared flags (any cmd/ command) and the
	// whole source text (metric names are fmt strings in it).
	declaredFlags := map[string]bool{}
	var source strings.Builder
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skippedDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			out = append(out, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		for _, m := range flagDecl.FindAllStringSubmatch(string(data), -1) {
			declaredFlags[m[1]] = true
		}
		source.Write(data)
		return nil
	})
	code := source.String()

	// What the docs claim.
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skippedDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			out = append(out, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		text := string(data)
		for _, m := range flagClaim.FindAllStringSubmatch(text, -1) {
			if !declaredFlags[m[1]] {
				out = append(out, fmt.Sprintf("%s: documents flag -%s, which no command declares", path, m[1]))
			}
		}
		seen := map[string]bool{}
		for _, name := range metricClaim.FindAllString(text, -1) {
			if seen[name] {
				continue
			}
			seen[name] = true
			if !strings.Contains(code, name) {
				out = append(out, fmt.Sprintf("%s: documents metric %s, which the code never emits", path, name))
			}
		}
		return nil
	})
	return out
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks resolves every relative link of every markdown
// file against the filesystem. External schemes and pure fragments are
// skipped; a `#fragment` suffix on a relative target is stripped (the
// file must exist; anchors are not verified).
func checkMarkdownLinks(root string) []string {
	var out []string
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skippedDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			out = append(out, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				out = append(out, fmt.Sprintf("%s: broken link %q", path, m[1]))
			}
		}
		return nil
	})
	return out
}
