// Command benchjson turns `go test -bench` output into a
// machine-readable benchmark artifact and, given a baseline, gates on
// regressions. CI runs the repo benchmarks with -count=N on the PR and
// on the main-branch baseline, lets benchstat render the human
// comparison, and uses this tool for the pass/fail decision and for the
// BENCH_results.json artifact the benchmark trajectory is tracked by.
//
//	benchjson -new new.txt [-old old.txt] [-out BENCH_results.json] \
//	          [-gate 'Ingest|Append|Audit'] [-threshold 20] [-alloc-threshold 10]
//
// Multiple -count samples of one benchmark are reduced to their median
// (robust to one noisy run, like benchstat). A gated benchmark fails
// the build when its median ns/op regresses by more than -threshold
// percent against the baseline, or — when both sides carry -benchmem
// columns — when its median allocs/op regresses by more than
// -alloc-threshold percent. The allocation gate is the cheaper and far
// more stable of the two (allocs/op is deterministic modulo pool
// warmup, where ns/op shares the runner with noisy neighbours), so it
// holds the zero-alloc ingest hot path at its floor: a change that
// re-introduces per-record garbage fails the PR even when the runner
// is too noisy for the ns/op gate to notice. Benchmarks present on
// only one side are reported but never fail either gate (new
// benchmarks must not break the PR that introduces them).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark line's measurements.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

// result is one benchmark's reduced (median) measurement.
type result struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// delta compares one benchmark across baseline and PR.
type delta struct {
	Name           string  `json:"name"`
	OldNs          float64 `json:"old_ns_per_op"`
	NewNs          float64 `json:"new_ns_per_op"`
	DeltaPct       float64 `json:"delta_pct"`
	OldAllocs      float64 `json:"old_allocs_per_op,omitempty"`
	NewAllocs      float64 `json:"new_allocs_per_op,omitempty"`
	AllocsDeltaPct float64 `json:"allocs_delta_pct,omitempty"`
	Gated          bool    `json:"gated"`
}

// artifact is the BENCH_results.json layout.
type artifact struct {
	Benchmarks []result `json:"benchmarks"`
	Baseline   []result `json:"baseline,omitempty"`
	Deltas     []delta  `json:"deltas,omitempty"`
	Gate       *gate    `json:"gate,omitempty"`
}

type gate struct {
	Pattern           string   `json:"pattern"`
	ThresholdPct      float64  `json:"threshold_pct"`
	AllocThresholdPct float64  `json:"alloc_threshold_pct"`
	Violations        []string `json:"violations"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)

// parseFile reads one `go test -bench` output file into per-benchmark
// sample lists.
func parseFile(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]sample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		s := sample{nsPerOp: ns}
		rest := strings.Fields(m[3])
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			switch rest[i+1] {
			case "B/op":
				s.bytesPerOp = v
				s.hasMem = true
			case "allocs/op":
				s.allocsPerOp = v
				s.hasMem = true
			}
		}
		out[m[1]] = append(out[m[1]], s)
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}

// reduce collapses samples to sorted median results.
func reduce(samples map[string][]sample) []result {
	out := make([]result, 0, len(samples))
	for name, ss := range samples {
		r := result{Name: name, Samples: len(ss)}
		var ns, bs, as []float64
		hasMem := false
		for _, s := range ss {
			ns = append(ns, s.nsPerOp)
			bs = append(bs, s.bytesPerOp)
			as = append(as, s.allocsPerOp)
			hasMem = hasMem || s.hasMem
		}
		r.NsPerOp = median(ns)
		if hasMem {
			r.BytesPerOp = median(bs)
			r.AllocsPerOp = median(as)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func main() {
	var (
		newPath   = flag.String("new", "", "bench output of the change under test (required)")
		oldPath   = flag.String("old", "", "bench output of the baseline (optional; enables deltas and the gate)")
		outPath   = flag.String("out", "BENCH_results.json", "artifact path")
		gatePat   = flag.String("gate", "", "regexp of benchmark names the regression gate applies to")
		threshold = flag.Float64("threshold", 20, "max tolerated ns/op regression, percent")
		allocThr  = flag.Float64("alloc-threshold", 10, "max tolerated allocs/op regression, percent")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -new is required")
		os.Exit(2)
	}

	newSamples, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	art := artifact{Benchmarks: reduce(newSamples)}
	if len(art.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in", *newPath)
		os.Exit(2)
	}

	failed := false
	if *oldPath != "" {
		oldSamples, err := parseFile(*oldPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		art.Baseline = reduce(oldSamples)
		var gated *regexp.Regexp
		if *gatePat != "" {
			gated, err = regexp.Compile(*gatePat)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad -gate: %v\n", err)
				os.Exit(2)
			}
			art.Gate = &gate{Pattern: *gatePat, ThresholdPct: *threshold, AllocThresholdPct: *allocThr, Violations: []string{}}
		}
		oldByName := make(map[string]result, len(art.Baseline))
		for _, r := range art.Baseline {
			oldByName[r.Name] = r
		}
		for _, nr := range art.Benchmarks {
			or, ok := oldByName[nr.Name]
			if !ok || or.NsPerOp == 0 {
				continue
			}
			d := delta{
				Name:     nr.Name,
				OldNs:    or.NsPerOp,
				NewNs:    nr.NsPerOp,
				DeltaPct: (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100,
				Gated:    gated != nil && gated.MatchString(nr.Name),
			}
			if or.AllocsPerOp > 0 || nr.AllocsPerOp > 0 {
				d.OldAllocs = or.AllocsPerOp
				d.NewAllocs = nr.AllocsPerOp
				if or.AllocsPerOp > 0 {
					d.AllocsDeltaPct = (nr.AllocsPerOp - or.AllocsPerOp) / or.AllocsPerOp * 100
				}
			}
			art.Deltas = append(art.Deltas, d)
			if d.Gated && d.DeltaPct > *threshold {
				art.Gate.Violations = append(art.Gate.Violations, d.Name)
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f → %.0f ns/op (%+.1f%% > %.0f%%)\n",
					d.Name, d.OldNs, d.NewNs, d.DeltaPct, *threshold)
				failed = true
			}
			// The allocation gate only fires when the baseline has memory
			// columns too — a benchmark that just grew -benchmem must not
			// fail the PR that adds the measurement.
			if d.Gated && or.AllocsPerOp > 0 && d.AllocsDeltaPct > *allocThr {
				art.Gate.Violations = append(art.Gate.Violations, d.Name+" (allocs)")
				fmt.Fprintf(os.Stderr, "benchjson: ALLOC REGRESSION %s: %.1f → %.1f allocs/op (%+.1f%% > %.0f%%)\n",
					d.Name, d.OldAllocs, d.NewAllocs, d.AllocsDeltaPct, *allocThr)
				failed = true
			}
		}
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("benchjson: %d benchmarks", len(art.Benchmarks))
	if len(art.Deltas) > 0 {
		fmt.Printf(", %d compared against baseline", len(art.Deltas))
	}
	fmt.Printf(" → %s\n", *outPath)
	if failed {
		os.Exit(1)
	}
}
