// Command provcalc parses, runs, traces, explores and statically analyses
// programs of the provenance calculus.
//
// Usage:
//
//	provcalc parse   [-f file | -e program]
//	provcalc run     [-f file | -e program] [-seed N] [-steps N] [-det]
//	provcalc trace   [-f file | -e program] [-seed N] [-steps N] [-det]
//	provcalc explore [-f file | -e program] [-states N] [-depth N]
//	provcalc check   [-f file | -e program] [-seeds N] [-steps N]
//	provcalc analyze [-f file | -e program] [-k N]
//	provcalc match   -pat PATTERN -prov PROVENANCE
//
// With neither -f nor -e, the program is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/parser"
	"repro/internal/semantics"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "parse":
		err = cmdParse(args)
	case "run":
		err = cmdRun(args, false)
	case "trace":
		err = cmdRun(args, true)
	case "explore":
		err = cmdExplore(args)
	case "graph":
		err = cmdGraph(args)
	case "check":
		err = cmdCheck(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "match":
		err = cmdMatch(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "provcalc: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "provcalc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: provcalc <command> [flags]

commands:
  parse     parse a program and print its canonical form
  run       run a program under the monitored semantics
  trace     run and print every step and intermediate state
  explore   enumerate the reachable state space
  graph     emit the reachable labelled transition system as Graphviz dot
  check     verify the Theorem 1 correctness invariant along runs
  analyze   static provenance-flow analysis (dead-branch report)
  match     test a pattern against a provenance literal`)
}

// sourceFlags wires the shared -f/-e source selection.
func sourceFlags(fs *flag.FlagSet) (file, expr *string) {
	file = fs.String("f", "", "read the program from this file")
	expr = fs.String("e", "", "use this literal program text")
	return
}

func loadSource(file, expr string) (*core.Program, error) {
	var src string
	switch {
	case file != "" && expr != "":
		return nil, fmt.Errorf("use -f or -e, not both")
	case file != "":
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		src = string(b)
	case expr != "":
		src = expr
	default:
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		src = string(b)
	}
	return core.Load(src)
}

func cmdParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	file, expr := sourceFlags(fs)
	fs.Parse(args)
	p, err := loadSource(*file, *expr)
	if err != nil {
		return err
	}
	fmt.Println(p.Sys)
	return nil
}

func cmdRun(args []string, traceMode bool) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	file, expr := sourceFlags(fs)
	seed := fs.Int64("seed", 1, "scheduler seed")
	steps := fs.Int("steps", 1000, "maximum reduction steps")
	det := fs.Bool("det", false, "deterministic scheduling (first redex)")
	fs.Parse(args)
	p, err := loadSource(*file, *expr)
	if err != nil {
		return err
	}
	opts := core.Options{Seed: *seed, MaxSteps: *steps, Deterministic: *det}
	if traceMode {
		trace := p.RunTrace(opts)
		for i, m := range trace {
			fmt.Printf("-- state %d --\n%s\n", i, m.Sys)
			if i < len(trace)-1 {
				fmt.Printf("   log: %s\n", m.Log)
			}
		}
		last := trace[len(trace)-1]
		fmt.Printf("final log: %s\n", last.Log)
		reportCorrectness(last)
		return nil
	}
	rep := p.Run(opts)
	fmt.Println("steps:")
	for i, l := range rep.Steps {
		fmt.Printf("%4d. %s\n", i+1, l)
	}
	fmt.Println("final:", rep.Final)
	fmt.Println("log:  ", rep.Log)
	fmt.Println("quiescent:", rep.Quiescent)
	if rep.Correct {
		fmt.Println("provenance: correct (Definition 3)")
	} else {
		fmt.Println("provenance: INCORRECT, witness", rep.Witness)
	}
	return nil
}

func reportCorrectness(m *monitor.Monitored) {
	if v, bad := monitor.FirstIncorrectValue(m); bad {
		fmt.Println("provenance: INCORRECT, witness", v)
	} else {
		fmt.Println("provenance: correct (Definition 3)")
	}
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	file, expr := sourceFlags(fs)
	states := fs.Int("states", 10000, "state budget")
	depth := fs.Int("depth", 100, "depth budget")
	fs.Parse(args)
	p, err := loadSource(*file, *expr)
	if err != nil {
		return err
	}
	res := p.Explore(*states, *depth)
	fmt.Printf("states: %d (truncated: %v)\n", len(res.States), res.Truncated)
	fmt.Printf("quiescent states: %d\n", len(res.Quiescent))
	for _, q := range res.Quiescent {
		fmt.Println("  ", q)
	}
	return nil
}

func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	file, expr := sourceFlags(fs)
	states := fs.Int("states", 200, "state budget")
	depth := fs.Int("depth", 50, "depth budget")
	fs.Parse(args)
	p, err := loadSource(*file, *expr)
	if err != nil {
		return err
	}
	g := semantics.BuildGraph(p.Sys, *states, *depth)
	if g.Truncated {
		fmt.Fprintln(os.Stderr, "provcalc: graph truncated at the state/depth budget")
	}
	fmt.Print(g.DOT())
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	file, expr := sourceFlags(fs)
	seeds := fs.Int("seeds", 10, "number of random schedules to try")
	steps := fs.Int("steps", 200, "steps per schedule")
	fs.Parse(args)
	p, err := loadSource(*file, *expr)
	if err != nil {
		return err
	}
	for s := int64(0); s < int64(*seeds); s++ {
		if err := p.CheckTheorem1(s, *steps); err != nil {
			return fmt.Errorf("seed %d: %w", s, err)
		}
	}
	fmt.Printf("Theorem 1 invariant holds along %d schedules x %d steps\n", *seeds, *steps)
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	file, expr := sourceFlags(fs)
	k := fs.Int("k", 0, "abstraction depth (0 = default)")
	fs.Parse(args)
	p, err := loadSource(*file, *expr)
	if err != nil {
		return err
	}
	res := p.Analyze(*k)
	fmt.Printf("fixpoint in %d iterations\n", res.Iterations)
	for _, br := range res.Branches {
		verdict := "live"
		if !br.Live {
			verdict = "DEAD"
		}
		fmt.Printf("%-4s %s: channel %s branch %d pattern [%s]", verdict,
			br.Principal, br.Channel, br.Branch, br.Pattern)
		if br.Live {
			fmt.Printf("  witness %s", br.Witness)
		}
		fmt.Println()
	}
	return nil
}

func cmdMatch(args []string) error {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	pat := fs.String("pat", "", "pattern (e.g. 'c!any;any')")
	prov := fs.String("prov", "", "provenance literal (e.g. 'b?();a!()')")
	fs.Parse(args)
	if *pat == "" {
		return fmt.Errorf("-pat is required")
	}
	p, err := parser.ParsePattern(*pat)
	if err != nil {
		return fmt.Errorf("pattern: %w", err)
	}
	k, err := parser.ParseProv(*prov)
	if err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	fmt.Printf("%s |= %s : %v\n", k, p, p.Matches(k))
	return nil
}
