// Package repro_test holds the benchmark harness: one testing.B benchmark
// per table/figure of the reproduction (see DESIGN.md §4 and
// EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem .
package repro_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/denote"
	"repro/internal/gen"
	"repro/internal/logs"
	"repro/internal/monitor"
	"repro/internal/parser"
	"repro/internal/pattern"
	"repro/internal/runtime"
	"repro/internal/semantics"
	"repro/internal/store"
	"repro/internal/syntax"
	"repro/internal/trust"
	"repro/internal/wire"
)

func mustSys(b *testing.B, src string) syntax.System {
	b.Helper()
	s, err := parser.ParseSystem(src)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func pipelineSrc(depth int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "p0[h0!(v)]")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, " || p%d[h%d?(any as x).h%d!(x)]", i+1, i, i+1)
	}
	return sb.String()
}

func flatProv(n int) syntax.Prov {
	k := make(syntax.Prov, 0, n)
	for i := 0; i < n; i++ {
		p := string(rune('a' + i%4))
		if i%2 == 0 {
			k = append(k, syntax.OutEvent(p, nil))
		} else {
			k = append(k, syntax.InEvent(p, nil))
		}
	}
	return k
}

// --- T1: syntax, parsing, printing ---

func BenchmarkT1Parse(b *testing.B) {
	src := `
		c1[sub!(e1) | pub?(any;c1!any as x, any as y).done1!(x, y)] ||
		o[*( sub?{ ((c1+c3)!any;any as x).in1!(x) [] (c2!any;any as x).in2!(x) }
		   | res?(any as y, any as z).*(pub!(y, z)) )] ||
		j1[*(in1?(any as x).(new r. res!(x, r)))]
	`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parser.ParseSystem(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1Print(b *testing.B) {
	s := mustSys(b, pipelineSrc(8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.String()
	}
}

// --- T2: reduction ---

func BenchmarkT2ReductionStep(b *testing.B) {
	n := semantics.Normalize(mustSys(b, `a[m!(v)] || b[m?(any as x).0]`))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		steps := semantics.Steps(n)
		if len(steps) == 0 {
			b.Fatal("no step")
		}
	}
}

func BenchmarkT2ReductionRun(b *testing.B) {
	for _, depth := range []int{4, 16} {
		s := mustSys(b, pipelineSrc(depth))
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				semantics.RunToQuiescence(s, 10*depth+10)
			}
		})
	}
}

func BenchmarkT2Normalize(b *testing.B) {
	cfg := gen.Default()
	rng := rand.New(rand.NewSource(7))
	systems := make([]syntax.System, 32)
	for i := range systems {
		systems[i] = cfg.System(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		semantics.Normalize(systems[i%len(systems)])
	}
}

// --- T3/F2: pattern matching ---

func BenchmarkT3PatternMatch(b *testing.B) {
	classes := []struct {
		name string
		pat  pattern.Pattern
	}{
		{"direct", pattern.SeqP(pattern.Out(pattern.Name("c"), pattern.AnyP()), pattern.AnyP())},
		{"origin", pattern.SeqP(pattern.AnyP(), pattern.Out(pattern.Name("d"), pattern.AnyP()))},
		{"star", pattern.StarP(pattern.AltP(
			pattern.Out(pattern.All(), pattern.AnyP()),
			pattern.In(pattern.All(), pattern.AnyP())))},
	}
	for _, c := range classes {
		m := pattern.Compile(c.pat)
		for _, l := range []int{8, 64} {
			k := flatProv(l)
			b.Run(fmt.Sprintf("%s/len=%d", c.name, l), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m.Match(k)
				}
			})
		}
	}
}

// --- A1: matcher ablation ---

func BenchmarkMatcherAblation(b *testing.B) {
	a := pattern.Out(pattern.Name("a"), pattern.AnyP())
	pat := pattern.StarP(pattern.AltP(pattern.SeqP(a, a), pattern.SeqP(a, a, a)))
	m := pattern.Compile(pat)
	adversarial := func(n int) syntax.Prov {
		k := make(syntax.Prov, n)
		for i := range k {
			k[i] = syntax.OutEvent("a", nil)
		}
		k[n-1] = syntax.InEvent("b", nil)
		return k
	}
	for _, n := range []int{16, 28} {
		k := adversarial(n)
		b.Run(fmt.Sprintf("memo/len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Match(k)
			}
		})
		b.Run(fmt.Sprintf("naive/len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pattern.MatchNaive(pat, k)
			}
		})
	}
}

// --- T4: monitored semantics ---

func BenchmarkT4MonitoredStep(b *testing.B) {
	m := monitor.New(mustSys(b, `a[m!(v)] || b[m?(any as x).0]`))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(monitor.Steps(m)) == 0 {
			b.Fatal("no step")
		}
	}
}

// --- F1: tracking overhead ---

func BenchmarkTrackingOverhead(b *testing.B) {
	for _, depth := range []int{4, 16, 32} {
		s := mustSys(b, pipelineSrc(depth))
		prog := core.FromSystem(s)
		b.Run(fmt.Sprintf("plain/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				semantics.RunToQuiescence(s, 10*depth+10)
			}
		})
		b.Run(fmt.Sprintf("monitored/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog.Run(core.Options{Deterministic: true, MaxSteps: 10*depth + 10})
			}
		})
	}
}

// --- F2: pattern scaling (provenance growth) ---

func BenchmarkPatternScaling(b *testing.B) {
	pat := pattern.Compile(pattern.SeqP(pattern.AnyP(), pattern.Out(pattern.Name("a"), pattern.AnyP())))
	for _, l := range []int{4, 32, 256} {
		k := flatProv(l)
		b.Run(fmt.Sprintf("len=%d", l), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pat.Match(k)
			}
		})
	}
}

// --- F3: ≼ checking / audit query ---

func BenchmarkLogOrder(b *testing.B) {
	for _, depth := range []int{8, 32, 64} {
		prog := core.FromSystem(mustSys(b, pipelineSrc(depth)))
		rep := prog.Run(core.Options{Deterministic: true, MaxSteps: 10*depth + 10})
		k, ok := core.ProvenanceOf(rep.Final, "v")
		if !ok {
			b.Fatal("value lost")
		}
		v := syntax.Annot(syntax.Chan("v"), k)
		b.Run(fmt.Sprintf("denote+le/log=%d", logs.Size(rep.Log)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !logs.Le(denote.Denote(v), rep.Log) {
					b.Fatal("correctness lost")
				}
			}
		})
	}
}

func BenchmarkDenote(b *testing.B) {
	v := syntax.Annot(syntax.Chan("v"), flatProv(64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		denote.Denote(v)
	}
}

// --- F4: runtime middleware ---

func BenchmarkRuntimeInProc(b *testing.B) {
	net := runtime.NewNet()
	defer net.Close()
	a := net.Register("a")
	bb := net.Register("b")
	ch := syntax.Fresh(syntax.Chan("bench"))
	v := syntax.Fresh(syntax.Chan("v"))
	any := pattern.AnyP()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(ch, v); err != nil {
			b.Fatal(err)
		}
		if _, err := bb.Recv(ch, time.Second, any); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeSinkMirror compares send/receive throughput with a
// durable store mirror attached synchronously (the pre-pipeline
// behaviour: sink I/O under the Net mutex) versus through the ordered
// async pipeline (position assigned under the mutex, batches flushed by
// a dedicated goroutine). The async variant includes the final Flush,
// so both measure fully durable mirroring of the same log.
func BenchmarkRuntimeSinkMirror(b *testing.B) {
	for _, mode := range []string{"sync", "async"} {
		b.Run(mode, func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			net := runtime.NewNet()
			defer net.Close()
			if mode == "sync" {
				net.SetSinkSync(st)
			} else {
				net.SetSink(st)
			}
			a := net.Register("a")
			bb := net.Register("b")
			ch := syntax.Fresh(syntax.Chan("bench"))
			v := syntax.Fresh(syntax.Chan("v"))
			any := pattern.AnyP()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Send(ch, v); err != nil {
					b.Fatal(err)
				}
				if _, err := bb.Recv(ch, time.Second, any); err != nil {
					b.Fatal(err)
				}
			}
			if err := net.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkRuntimeTCP(b *testing.B) {
	srv := runtime.NewServer(runtime.NewNet())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	defer srv.Net.Close()
	ca, err := runtime.Dial(addr, "a")
	if err != nil {
		b.Fatal(err)
	}
	defer ca.Close()
	cb, err := runtime.Dial(addr, "b")
	if err != nil {
		b.Fatal(err)
	}
	defer cb.Close()
	ch := syntax.Fresh(syntax.Chan("bench"))
	v := syntax.Fresh(syntax.Chan("v"))
	any := pattern.AnyP()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ca.Send(ch, v); err != nil {
			b.Fatal(err)
		}
		if _, err := cb.Recv(ch, 5*time.Second, any); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: the competition as an end-to-end workload ---

func BenchmarkCompetitionRound(b *testing.B) {
	s := mustSys(b, `
		c1[sub!(e1) | pub?(any;c1!any as x, any as y).done1!(x, y)] ||
		o[*( sub?{ ((c1+c3)!any;any as x).in1!(x) [] (c2!any;any as x).in2!(x) }
		   | res?(any as y, any as z).*(pub!(y, z)) )] ||
		j1[*(in1?(any as x).(new r. res!(x, r)))]
	`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// 8 steps deliver c1's result (send,recv,fwd,judge recv,res,recv,pub,recv).
		tr := semantics.Run(s, int64(i), 8)
		if tr.Len() == 0 {
			b.Fatal("no progress")
		}
	}
}

// --- TH1: correctness checking cost ---

func BenchmarkCorrectnessCheck(b *testing.B) {
	m := monitor.New(mustSys(b, pipelineSrc(8)))
	for {
		steps := monitor.Steps(m)
		if len(steps) == 0 {
			break
		}
		m = steps[0].Next
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, bad := monitor.FirstIncorrectValue(m); bad {
			b.Fatal("incorrect")
		}
	}
}

// --- X1: trust scoring ---

func BenchmarkTrustScore(b *testing.B) {
	pol := trust.NewPolicy().Rate("a", 0.9).Rate("b", 0.4)
	k := flatProv(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pol.Score(k)
	}
}

// --- X2: static analysis ---

func BenchmarkFlowAnalysis(b *testing.B) {
	prog := core.FromSystem(mustSys(b, `
		c[m!(v)] ||
		a[m?(c!any;any as x).okA!(x)] ||
		b[m?(any;d!any as y).okB!(y)] ||
		f[*(m?(any as x).m!(x))]
	`))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog.Analyze(0)
	}
}

// --- wire codec ---

func BenchmarkWireRoundTrip(b *testing.B) {
	m := &syntax.Message{Chan: "ch", Payload: []syntax.AnnotatedValue{
		syntax.Annot(syntax.Chan("v"), flatProv(16)),
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := wire.EncodeMessage(m)
		if _, err := wire.DecodeMessage(enc); err != nil {
			b.Fatal(err)
		}
	}
}
