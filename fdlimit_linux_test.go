//go:build linux

package repro_test

import "syscall"

// raiseFDLimit tries to raise the soft RLIMIT_NOFILE to at least need
// (raising the hard limit too when the process may — root on the CI
// runners) and returns the soft limit actually in effect. Callers skip
// fd-hungry tiers when the returned limit is still short.
func raiseFDLimit(need uint64) uint64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0
	}
	if rl.Cur >= need {
		return rl.Cur
	}
	want := rl
	want.Cur = need
	if want.Max < need {
		want.Max = need // needs CAP_SYS_RESOURCE; falls through when denied
	}
	if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want) == nil {
		return want.Cur
	}
	// Could not touch the hard limit: take all of the existing one.
	if rl.Max > rl.Cur {
		want = syscall.Rlimit{Cur: rl.Max, Max: rl.Max}
		if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want) == nil {
			return want.Cur
		}
	}
	return rl.Cur
}
