package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/testutil"
)

// newSeeded returns the deterministic PRNG used by the integration
// tests. The seed is overridable via REPRO_SEED and logged on failure,
// like every randomized suite in the repo.
func newSeeded(t testing.TB, seed int64) *rand.Rand {
	t.Helper()
	return testutil.Rand(testutil.Seed(t, seed))
}
