package repro_test

import "math/rand"

// newSeeded returns the deterministic PRNG used by the integration tests.
func newSeeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
